"""Flamegraph-style cycle attribution: which static site owns the cycles.

A trend verdict like "mcf cycles +12%" names a symptom; acting on it
needs the *site* — which triggering store's support threads grew.  This
module joins the two measurement systems that each hold half the
answer:

* the :class:`~repro.timing.TimingSimulator` result knows the run's
  total cycle count and the main/support instruction split, and
* the :class:`~repro.obs.causality.CausalGraph` knows, per activation,
  the static PC of the triggering store plus measured queue-wait and
  execute latencies (in cycles whenever the trace carried a cycle
  source),

into an additive attribution tree: ``workload -> main | support ->
pc=<site>``.  Support bands are the per-site sums of measured execute
time; the main band is the remainder of the run's total, so widths sum
to the run and a site's width is cycles you would get back by
eliminating it.  Queue wait overlaps main-thread execution (the main
thread keeps retiring while an activation sits queued), so it annotates
a site's hover detail rather than widening any band.  When a
:class:`~repro.profiling.redundancy.RedundantLoadProfiler` is supplied,
its per-site dynamic/silent store counts join the hover detail — the
same join :meth:`CausalGraph.site_attribution` does.

Two export shapes, both dependency-free:

* :func:`folded_stacks` — the classic semicolon-folded text format
  (``mcf;support;pc=0x84 1234``), one line per frame, consumable by any
  external flamegraph tool;
* :func:`flame_svg` — a self-contained SVG (no d3, no script) embedded
  directly in the HTML report, every ``<rect/>`` carrying a ``<title>``
  hover and an ``id`` anchor (``flame-<workload>-pc<site>``) that trend
  verdicts link to.
"""

from __future__ import annotations

import html
import re
from typing import Dict, List, Optional

from repro.obs.causality import (OUTCOME_CANCELED, OUTCOME_COMPLETED,
                                 CausalGraph)

#: pstats frame label of an exec-compiled superblock function:
#: ``<superblock>:<line>(sb_<entry_pc>)`` (or the module-level exec frame)
_SB_FRAME = re.compile(r"<superblock>:\d+\((?:sb_)?([^)]+)\)")


def fold_superblock_frames(text: str) -> str:
    """Rewrite exec-compiled superblock frames to ``sb:<entry_pc>``.

    ``cProfile`` labels the superblock tier's compiled block functions
    with their synthetic filename and generated names —
    ``<superblock>:41(sb_18)`` — which reads as opaque exec'd code.
    Fold each to the program-level site name ``sb:<entry_pc>`` (and the
    shared-module exec frame to ``sb:<module>``) so profile reports
    attribute time to superblock entry PCs, same vocabulary as
    ``form_blocks``/``cache_stats``.
    """
    return _SB_FRAME.sub(lambda m: f"sb:{m.group(1)}", text)


def attribute_cycles(workload: str, graph: CausalGraph, total_cycles: int,
                     profiler=None) -> Dict:
    """Build the additive attribution tree for one traced, timed run.

    ``total_cycles`` is the timing simulator's cycle count for the run;
    ``graph`` is the causal graph of the same run's trace.  Returns a
    JSON-ready dict: ``{"workload", "total", "unit", "frames": [...]}``
    where each frame is ``{"name", "kind", "value", "pc", "detail"}``
    and support-frame values plus the main frame sum to ``total``.
    """
    per_site: Dict[Optional[int], Dict[str, float]] = {}
    unit = "cycles"
    for act in graph.activations.values():
        if act.outcome not in (OUTCOME_COMPLETED, OUTCOME_CANCELED):
            continue
        execute = act.execute_time
        if execute is None:
            continue
        unit = act.latency_unit
        site = per_site.setdefault(act.pc, {
            "execute": 0.0, "queue_wait": 0.0, "runs": 0, "canceled": 0})
        site["execute"] += execute
        site["runs"] += 1
        if act.outcome == OUTCOME_CANCELED:
            site["canceled"] += 1
        wait = act.queue_wait
        if wait is not None:
            site["queue_wait"] += wait

    # join the redundancy profile and trigger outcomes at the same PCs
    outcomes = {row["pc"]: row for row in graph.site_attribution(profiler)}

    support_total = sum(site["execute"] for site in per_site.values())
    # events-unit traces (no cycle source) cannot be subtracted from a
    # cycle total; keep the site split but don't fabricate a main band
    additive = unit == "cycles" and total_cycles > 0
    main = max(0.0, total_cycles - support_total) if additive else 0.0

    frames: List[Dict] = []
    if additive:
        frames.append({
            "name": "main", "kind": "main", "value": main, "pc": None,
            "detail": (f"main-thread residual: total {total_cycles} - "
                       f"support {support_total:g}"),
        })
    for pc, site in sorted(per_site.items(),
                           key=lambda item: -item[1]["execute"]):
        outcome = outcomes.get(pc, {})
        detail_bits = [
            f"{site['runs']:g} activation(s), "
            f"{site['canceled']:g} canceled",
            f"queue wait {site['queue_wait']:g} {unit} (overlapped)",
        ]
        for key in ("fired", "absorbed", "suppressed"):
            if outcome.get(key):
                detail_bits.append(f"{key} {outcome[key]}")
        for key in ("dynamic_stores", "silent_stores"):
            if outcome.get(key) is not None:
                detail_bits.append(f"{key.replace('_', ' ')} "
                                   f"{outcome[key]}")
        frames.append({
            "name": f"pc={pc:#x}" if pc is not None else "pc=?",
            "kind": "support",
            "value": site["execute"],
            "pc": pc,
            "detail": "; ".join(detail_bits),
        })
    return {
        "workload": workload,
        "total": float(total_cycles) if additive
        else support_total or float(total_cycles),
        "unit": unit,
        "support_total": support_total,
        "frames": frames,
    }


def folded_stacks(attribution: Dict) -> str:
    """Semicolon-folded stack lines (``flamegraph.pl`` input format)."""
    workload = attribution["workload"]
    lines = []
    for frame in attribution["frames"]:
        value = int(round(frame["value"]))
        if value <= 0:
            continue
        if frame["kind"] == "main":
            lines.append(f"{workload};main {value}")
        else:
            lines.append(f"{workload};support;{frame['name']} {value}")
    return "\n".join(lines) + ("\n" if lines else "")


# muted blue for the main band, warm ramp for support sites — hottest
# site gets the deepest shade
_MAIN_FILL = "#6b93b5"
_SUPPORT_FILLS = ("#d9534f", "#e07b54", "#e8a25a", "#efc364", "#f4dc82")
_ROW_H = 22
_PAD = 2


def _fill_for(frame: Dict, rank: int) -> str:
    if frame["kind"] == "main":
        return _MAIN_FILL
    return _SUPPORT_FILLS[min(rank, len(_SUPPORT_FILLS) - 1)]


def flame_svg(attribution: Dict, width: int = 900,
              anchor_prefix: str = "flame") -> str:
    """Render one attribution tree as a self-contained SVG string.

    Three rows: the run total, then the main/support split, then one
    cell per support site (widths proportional to cycles).  Every cell
    is a ``<rect/>`` + clipped label with a ``<title>`` hover; support
    cells carry ``id="<anchor_prefix>-<workload>-pc<site>"`` so verdict
    tables can deep-link the responsible site.
    """
    workload = attribution["workload"]
    total = attribution["total"] or 1.0
    unit = attribution["unit"]
    frames = [f for f in attribution["frames"] if f["value"] > 0]
    height = 3 * (_ROW_H + _PAD) + _PAD

    def esc(text: str) -> str:
        return html.escape(str(text), quote=True)

    def cell(x: float, y: int, w: float, fill: str, label: str,
             title: str, cell_id: str = "") -> str:
        w = max(w, 1.0)
        id_attr = f' id="{esc(cell_id)}"' if cell_id else ""
        # ~7.2 px per character at 12px monospace; hide labels that
        # cannot fit their cell
        text = ""
        if w >= 7.2 * len(label) + 6:
            text = (f'<text x="{x + 4:.1f}" y="{y + 15}" '
                    f'font-size="12" font-family="monospace" '
                    f'fill="#1a1a1a">{esc(label)}</text>')
        return (f'<g{id_attr}><rect x="{x:.1f}" y="{y}" '
                f'width="{w:.1f}" height="{_ROW_H}" fill="{fill}" '
                f'stroke="#ffffff" stroke-width="1" rx="2" />'
                f'<title>{esc(title)}</title>{text}</g>')

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'role="img" aria-label="cycle attribution for {esc(workload)}">',
    ]
    # row 0: the whole run
    parts.append(cell(
        0, _PAD, width, "#b8c9d9",
        f"{workload}: {total:g} {unit}",
        f"{workload}: {total:g} {unit} total"))
    # row 1: main vs support bands
    y1 = _PAD + _ROW_H + _PAD
    support_total = attribution.get("support_total", 0.0)
    x = 0.0
    main_value = total - support_total
    if main_value > 0:
        w = width * main_value / total
        parts.append(cell(x, y1, w, _MAIN_FILL,
                          f"main {main_value:g}",
                          f"main thread: {main_value:g} {unit}"))
        x += w
    if support_total > 0:
        parts.append(cell(x, y1, width * support_total / total, "#c9724f",
                          f"support {support_total:g}",
                          f"support threads: {support_total:g} {unit}"))
    # row 2: per-site support cells, hottest first, after the main gap
    y2 = y1 + _ROW_H + _PAD
    x = width * max(main_value, 0.0) / total
    rank = 0
    for frame in frames:
        if frame["kind"] != "support":
            continue
        w = width * frame["value"] / total
        site = frame["pc"]
        cell_id = (f"{anchor_prefix}-{workload}-pc{site:#x}"
                   if site is not None else f"{anchor_prefix}-{workload}-pcx")
        parts.append(cell(
            x, y2, w, _fill_for(frame, rank),
            f"{frame['name']} {frame['value']:g}",
            f"{frame['name']}: {frame['value']:g} {unit}; "
            f"{frame['detail']}", cell_id))
        x += w
        rank += 1
    parts.append("</svg>")
    return "".join(parts)


def hottest_site(attribution: Dict) -> Optional[Dict]:
    """The support frame owning the most cycles, or None."""
    support = [f for f in attribution["frames"] if f["kind"] == "support"]
    return max(support, key=lambda f: f["value"]) if support else None
