"""Compressed event traces: bounded-memory spill format for EngineTrace.

The in-memory :class:`~repro.core.trace.EngineTrace` buffer caps at
``max_events``; past that, full-fidelity observability used to simply
stop.  This module is the spill target: a streaming, chunked, compressed
on-disk encoding of the exact event stream, so provenance (``explain``),
reporting, and timeline export work on runs 100x past the buffer cap
while holding only one chunk of events in memory at a time.  The design
follows "Data Race Detection on Compressed Traces" (PAPERS.md): analyses
consume the compressed stream *directly* through an iterator — nothing
ever materializes the whole trace.

On-disk layout (all integers LEB128 varints; see docs/architecture.md
"Trace formats & sampling")::

    magic  b"DTTC\\x01"
    record*:
      b"S" len name-utf8                -- stream start (one per trace)
      b"C" n-events z-len zlib-bytes    -- chunk of n encoded events
      b"E" len meta-json                -- stream end (event/drop counts)
    b"F" len meta-json                  -- file footer; ends the file

Event encoding inside a chunk (before zlib), per event: a presence
bitmask byte; dictionary ids for ``kind`` / ``thread`` / ``detail``
(id 0 introduces a new string, later ids refer back — the event schema
is dictionary-coded per stream); zigzag-varint *deltas* against the
previous event's value for ``sequence`` (usually +1, encoded free),
``address``, ``activation_id``, ``cause_id``, ``pc``, and ``cycle``.
Delta+dictionary coding leaves zlib mostly zeros and tiny ids, which is
where the compression ratio comes from.

Round-trip exactness is a contract (property-tested across every suite
workload): ``read -> EngineEvent`` reproduces the recorded stream
field-for-field, so every consumer of a live trace accepts a
:class:`CTraceStream` unchanged — it exposes the same ``.events`` /
``.dropped`` / ``.truncated`` surface, and ``.events`` is a *fresh*
iterator on each access (streams are re-iterable: the reader indexes
chunk offsets once, then decodes on demand).
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.trace import EngineEvent
from repro.errors import CTraceError
from repro.obs.ioutil import AtomicBinaryWriter

MAGIC = b"DTTC\x01"

#: per-stream dictionary capacity; past this, strings encode inline
#: (deterministic on both sides, so writer and reader stay in lockstep)
DICT_CAP = 4096

#: default events per chunk — the only full-fidelity buffer either side
#: ever holds, i.e. the spill path's fixed memory budget
CHUNK_EVENTS = 4096

_F_ADDRESS = 1 << 0
_F_ACTIVATION = 1 << 1
_F_CAUSE = 1 << 2
_F_PC = 1 << 3
_F_CYCLE = 1 << 4
_F_DETAIL = 1 << 5
_F_THREAD = 1 << 6
_F_SEQ_DELTA = 1 << 7  # sequence delta != +1, explicit value follows


# ---------------------------------------------------------------------------
# varint / zigzag primitives
# ---------------------------------------------------------------------------


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise CTraceError(f"varint cannot encode negative value {value}")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CTraceError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return -((value + 1) >> 1) if value & 1 else value >> 1


# ---------------------------------------------------------------------------
# per-stream coder state (shared shape between writer and reader)
# ---------------------------------------------------------------------------


class _Dict:
    """An append-only string dictionary with deterministic admission."""

    __slots__ = ("to_id", "strings")

    def __init__(self) -> None:
        self.to_id: Dict[str, int] = {}
        self.strings: List[str] = []

    def encode(self, out: bytearray, value: str) -> None:
        known = self.to_id.get(value)
        if known is not None:
            _write_varint(out, known)
            return
        _write_varint(out, 0)
        raw = value.encode("utf-8")
        _write_varint(out, len(raw))
        out.extend(raw)
        if len(self.strings) < DICT_CAP:
            self.strings.append(value)
            self.to_id[value] = len(self.strings)  # ids are 1-based

    def decode(self, data: bytes, pos: int) -> Tuple[str, int]:
        code, pos = _read_varint(data, pos)
        if code:
            try:
                return self.strings[code - 1], pos
            except IndexError:
                raise CTraceError(
                    f"dictionary id {code} out of range") from None
        length, pos = _read_varint(data, pos)
        if pos + length > len(data):
            raise CTraceError("truncated dictionary string")
        value = data[pos:pos + length].decode("utf-8")
        pos += length
        if len(self.strings) < DICT_CAP:
            self.strings.append(value)
            self.to_id[value] = len(self.strings)
        return value, pos


class _StreamCoder:
    """Delta/dictionary state for one stream (writer and reader mirror it)."""

    __slots__ = ("kinds", "threads", "details", "sequence", "address",
                 "activation", "cause", "pc", "cycle")

    def __init__(self) -> None:
        self.kinds = _Dict()
        self.threads = _Dict()
        self.details = _Dict()
        self.sequence = 0
        self.address = 0
        self.activation = 0
        self.cause = 0
        self.pc = 0
        self.cycle = 0

    # -- encoding --------------------------------------------------------

    def encode(self, out: bytearray, event: EngineEvent) -> None:
        flags = 0
        if event.address is not None:
            flags |= _F_ADDRESS
        if event.activation_id is not None:
            flags |= _F_ACTIVATION
        if event.cause_id is not None:
            flags |= _F_CAUSE
        if event.pc is not None:
            flags |= _F_PC
        if event.cycle is not None:
            flags |= _F_CYCLE
        if event.detail:
            flags |= _F_DETAIL
        if event.thread is not None:
            flags |= _F_THREAD
        seq_delta = event.sequence - self.sequence
        if seq_delta != 1:
            flags |= _F_SEQ_DELTA
        out.append(flags)
        self.kinds.encode(out, event.kind)
        if flags & _F_SEQ_DELTA:
            _write_varint(out, _zigzag(seq_delta))
        self.sequence = event.sequence
        if flags & _F_THREAD:
            self.threads.encode(out, event.thread)
        if flags & _F_ADDRESS:
            _write_varint(out, _zigzag(event.address - self.address))
            self.address = event.address
        if flags & _F_ACTIVATION:
            _write_varint(out, _zigzag(event.activation_id - self.activation))
            self.activation = event.activation_id
        if flags & _F_CAUSE:
            _write_varint(out, _zigzag(event.cause_id - self.cause))
            self.cause = event.cause_id
        if flags & _F_PC:
            _write_varint(out, _zigzag(event.pc - self.pc))
            self.pc = event.pc
        if flags & _F_CYCLE:
            _write_varint(out, _zigzag(event.cycle - self.cycle))
            self.cycle = event.cycle
        if flags & _F_DETAIL:
            self.details.encode(out, event.detail)

    # -- decoding --------------------------------------------------------

    def decode(self, data: bytes, pos: int) -> Tuple[EngineEvent, int]:
        if pos >= len(data):
            raise CTraceError("truncated event")
        flags = data[pos]
        pos += 1
        kind, pos = self.kinds.decode(data, pos)
        if flags & _F_SEQ_DELTA:
            raw, pos = _read_varint(data, pos)
            self.sequence += _unzigzag(raw)
        else:
            self.sequence += 1
        thread = None
        if flags & _F_THREAD:
            thread, pos = self.threads.decode(data, pos)
        address = activation = cause = pc = cycle = None
        if flags & _F_ADDRESS:
            raw, pos = _read_varint(data, pos)
            self.address += _unzigzag(raw)
            address = self.address
        if flags & _F_ACTIVATION:
            raw, pos = _read_varint(data, pos)
            self.activation += _unzigzag(raw)
            activation = self.activation
        if flags & _F_CAUSE:
            raw, pos = _read_varint(data, pos)
            self.cause += _unzigzag(raw)
            cause = self.cause
        if flags & _F_PC:
            raw, pos = _read_varint(data, pos)
            self.pc += _unzigzag(raw)
            pc = self.pc
        if flags & _F_CYCLE:
            raw, pos = _read_varint(data, pos)
            self.cycle += _unzigzag(raw)
            cycle = self.cycle
        detail = ""
        if flags & _F_DETAIL:
            detail, pos = self.details.decode(data, pos)
        return EngineEvent(self.sequence, kind, thread, address, detail,
                           activation, cause, pc, cycle), pos


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------


class CTraceWriter:
    """Streaming compressed-trace writer (one file, many named streams).

    Streams are sequential — ``begin_stream`` implicitly ends the
    previous one — matching how the suite runner executes traced runs.
    At most ``chunk_events`` events are buffered before a chunk is
    compressed and written through, so the writer's memory is a fixed
    budget regardless of run length.  The underlying file is staged by
    :class:`~repro.obs.ioutil.AtomicBinaryWriter`: until :meth:`close`
    commits, the target path is untouched.
    """

    def __init__(self, path: str, chunk_events: int = CHUNK_EVENTS,
                 compress_level: int = 6):
        if chunk_events < 1:
            raise CTraceError(
                f"chunk_events must be >= 1, got {chunk_events}")
        self.path = path
        self.chunk_events = chunk_events
        self.compress_level = compress_level
        self._out: Optional[AtomicBinaryWriter] = AtomicBinaryWriter(path)
        self._out.write(MAGIC)
        self._coder: Optional[_StreamCoder] = None
        self._buffer: List[EngineEvent] = []
        self._stream_name: Optional[str] = None
        self._stream_events = 0
        self._stream_meta: Dict[str, object] = {}
        self.events_written = 0
        self.streams_written = 0

    # -- stream lifecycle -------------------------------------------------

    def begin_stream(self, name: str) -> None:
        """Start a named stream; ends the previous stream if one is open."""
        self._require_open()
        if self._stream_name is not None:
            self.end_stream()
        header = bytearray(b"S")
        raw = name.encode("utf-8")
        _write_varint(header, len(raw))
        header.extend(raw)
        self._out.write(bytes(header))
        self._coder = _StreamCoder()
        self._stream_name = name
        self._stream_events = 0
        self._stream_meta = {}
        self.streams_written += 1

    def append(self, event: EngineEvent) -> None:
        """Append one event to the open stream (spill entry point)."""
        if self._stream_name is None:
            raise CTraceError("append() outside a stream; call "
                              "begin_stream() first")
        self._buffer.append(event)
        self._stream_events += 1
        self.events_written += 1
        if len(self._buffer) >= self.chunk_events:
            self._flush_chunk()

    def annotate(self, **meta) -> None:
        """Attach metadata to the open stream's end record (e.g. the
        in-memory buffer's drop policy and drop count)."""
        if self._stream_name is None:
            raise CTraceError("annotate() outside a stream")
        self._stream_meta.update(meta)

    def end_stream(self, **meta) -> None:
        """Close the open stream, writing its end record."""
        self._require_open()
        if self._stream_name is None:
            return
        self._flush_chunk()
        self._stream_meta.update(meta)
        self._stream_meta.setdefault("events", self._stream_events)
        record = bytearray(b"E")
        raw = json.dumps(self._stream_meta, sort_keys=True).encode("utf-8")
        _write_varint(record, len(raw))
        record.extend(raw)
        self._out.write(bytes(record))
        self._coder = None
        self._stream_name = None
        self._stream_meta = {}

    # -- file lifecycle ---------------------------------------------------

    @property
    def bytes_written(self) -> int:
        """Bytes written through so far (excludes the unflushed buffer)."""
        return self._out.bytes_written if self._out is not None else 0

    def close(self, **meta) -> Dict[str, object]:
        """End any open stream, write the footer, and commit the file.

        Returns the footer metadata (stream/event/byte counts) — the
        numbers the manifest records as compression provenance.
        """
        self._require_open()
        self.end_stream()
        footer = {
            "streams": self.streams_written,
            "events": self.events_written,
        }
        footer.update(meta)
        record = bytearray(b"F")
        raw = json.dumps(footer, sort_keys=True).encode("utf-8")
        _write_varint(record, len(raw))
        record.extend(raw)
        self._out.write(bytes(record))
        footer["bytes"] = self._out.bytes_written
        self._out.commit()
        self._out = None
        return footer

    def abort(self) -> None:
        """Discard everything; the target path is left untouched."""
        if self._out is not None:
            self._out.abort()
            self._out = None

    def __enter__(self) -> "CTraceWriter":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if self._out is None:
            return
        if exc_type is None:
            self.close()
        else:
            self.abort()

    # -- internals --------------------------------------------------------

    def _require_open(self) -> None:
        if self._out is None:
            raise CTraceError(f"writer for {self.path!r} already closed")

    def _flush_chunk(self) -> None:
        if not self._buffer:
            return
        body = bytearray()
        for event in self._buffer:
            self._coder.encode(body, event)
        compressed = zlib.compress(bytes(body), self.compress_level)
        record = bytearray(b"C")
        _write_varint(record, len(self._buffer))
        _write_varint(record, len(compressed))
        self._out.write(bytes(record))
        self._out.write(compressed)
        self._buffer.clear()


# ---------------------------------------------------------------------------
# reader
# ---------------------------------------------------------------------------


class CTraceStream:
    """One named stream of a compressed trace file.

    Quacks like an :class:`~repro.core.trace.EngineTrace` for every
    consumer that iterates: ``.events`` decodes lazily (a fresh
    iterator per access — streams are re-iterable), ``.dropped`` /
    ``.truncated`` report the in-memory buffer health the writer
    annotated, ``len()`` is the event count from the stream index.
    """

    def __init__(self, path: str, name: str,
                 chunks: List[Tuple[int, int, int]],
                 meta: Dict[str, object]):
        self.path = path
        self.name = name
        #: (file offset of zlib payload, event count, compressed length)
        self._chunks = chunks
        self.meta = meta

    @property
    def event_count(self) -> int:
        return sum(count for _off, count, _zlen in self._chunks)

    @property
    def dropped(self) -> int:
        """Events missing from this stream (spill-side; normally 0)."""
        return int(self.meta.get("dropped", 0))

    @property
    def truncated(self) -> bool:
        return self.dropped > 0

    @property
    def compressed_bytes(self) -> int:
        return sum(zlen for _off, _count, zlen in self._chunks)

    @property
    def events(self) -> Iterator[EngineEvent]:
        """Decode the stream, one chunk in memory at a time."""
        coder = _StreamCoder()
        with open(self.path, "rb") as handle:
            for offset, count, zlen in self._chunks:
                handle.seek(offset)
                compressed = handle.read(zlen)
                if len(compressed) != zlen:
                    raise CTraceError(
                        f"{self.path!r}: truncated chunk at {offset}")
                data = zlib.decompress(compressed)
                pos = 0
                for _ in range(count):
                    event, pos = coder.decode(data, pos)
                    yield event
                if pos != len(data):
                    raise CTraceError(
                        f"{self.path!r}: {len(data) - pos} trailing bytes "
                        f"in chunk at {offset}")

    def __len__(self) -> int:
        return self.event_count

    def __repr__(self) -> str:
        return (f"CTraceStream({self.name!r}, {self.event_count} events, "
                f"{len(self._chunks)} chunks)")


class CTraceReader:
    """Index a compressed trace file; decode streams on demand.

    Construction scans record headers only (chunk payloads are seeked
    over), so opening a multi-gigabyte trace is O(chunks).  A file with
    no footer — a crashed writer never commits, so this means the bytes
    were copied mid-write — fails loudly rather than silently dropping
    the tail.
    """

    def __init__(self, path: str):
        self.path = path
        self.streams: List[CTraceStream] = []
        self.footer: Dict[str, object] = {}
        self.bytes_total = os.path.getsize(path)
        self._index()

    def stream(self, name: Optional[str] = None) -> CTraceStream:
        """The stream called ``name``, or the only/first stream."""
        if name is None:
            if not self.streams:
                raise CTraceError(f"{self.path!r} holds no streams")
            return self.streams[0]
        for stream in self.streams:
            if stream.name == name:
                return stream
        known = ", ".join(repr(s.name) for s in self.streams)
        raise CTraceError(
            f"{self.path!r} has no stream {name!r} (streams: {known})")

    def named_streams(self) -> List[Tuple[str, CTraceStream]]:
        """(name, stream) pairs, in file order — the same shape
        :meth:`SuiteRunner.traces` returns for live traces."""
        return [(stream.name, stream) for stream in self.streams]

    @property
    def event_count(self) -> int:
        return sum(stream.event_count for stream in self.streams)

    def __repr__(self) -> str:
        return (f"CTraceReader({self.path!r}, {len(self.streams)} streams, "
                f"{self.event_count} events)")

    # -- internals --------------------------------------------------------

    def _index(self) -> None:
        with open(self.path, "rb") as handle:
            magic = handle.read(len(MAGIC))
            if magic != MAGIC:
                raise CTraceError(
                    f"{self.path!r} is not a compressed trace "
                    f"(bad magic {magic!r})")
            current: Optional[Tuple[str, List[Tuple[int, int, int]]]] = None
            saw_footer = False
            while True:
                tag = handle.read(1)
                if not tag:
                    break
                if saw_footer:
                    raise CTraceError(
                        f"{self.path!r}: data after the footer record")
                if tag == b"S":
                    name = self._read_sized(handle).decode("utf-8")
                    if current is not None:
                        raise CTraceError(
                            f"{self.path!r}: stream {name!r} starts inside "
                            f"stream {current[0]!r}")
                    current = (name, [])
                elif tag == b"C":
                    if current is None:
                        raise CTraceError(
                            f"{self.path!r}: chunk outside any stream")
                    count = self._read_varint_io(handle)
                    zlen = self._read_varint_io(handle)
                    offset = handle.tell()
                    handle.seek(zlen, os.SEEK_CUR)
                    current[1].append((offset, count, zlen))
                elif tag == b"E":
                    if current is None:
                        raise CTraceError(
                            f"{self.path!r}: stream end outside any stream")
                    meta = json.loads(self._read_sized(handle))
                    name, chunks = current
                    self.streams.append(
                        CTraceStream(self.path, name, chunks, meta))
                    current = None
                elif tag == b"F":
                    if current is not None:
                        raise CTraceError(
                            f"{self.path!r}: footer inside stream "
                            f"{current[0]!r}")
                    self.footer = json.loads(self._read_sized(handle))
                    saw_footer = True
                else:
                    raise CTraceError(
                        f"{self.path!r}: unknown record tag {tag!r}")
            if not saw_footer:
                raise CTraceError(
                    f"{self.path!r}: no footer — the trace was truncated "
                    "(writer crashed before commit?)")

    def _read_varint_io(self, handle) -> int:
        result = 0
        shift = 0
        while True:
            byte = handle.read(1)
            if not byte:
                raise CTraceError(f"{self.path!r}: truncated record header")
            result |= (byte[0] & 0x7F) << shift
            if not byte[0] & 0x80:
                return result
            shift += 7

    def _read_sized(self, handle) -> bytes:
        length = self._read_varint_io(handle)
        data = handle.read(length)
        if len(data) != length:
            raise CTraceError(f"{self.path!r}: truncated record body")
        return data


def write_trace(path: str, *named_traces) -> Dict[str, object]:
    """Write (name, trace) pairs as one compressed file; returns footer.

    ``trace`` is anything with an ``.events`` iterable (a live
    :class:`~repro.core.trace.EngineTrace`, a list, or another
    :class:`CTraceStream`) — the whole-file convenience twin of
    :func:`repro.obs.timeline.write_chrome_trace`.
    """
    with CTraceWriter(path) as writer:
        for name, trace in named_traces:
            writer.begin_stream(name)
            for event in trace.events:
                writer.append(event)
            writer.end_stream(dropped=getattr(trace, "dropped", 0))
        return writer.close()
