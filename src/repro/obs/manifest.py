"""Run manifests: what ran, under what configuration, at what cost.

A :class:`RunManifest` is the provenance record of one harness run: a
stable fingerprint of everything that identified the run (seed, scale,
and the full set of memoization keys the runner executed, each of which
embeds workload, build kind, machine configuration, and DTT-config
fingerprint), wall-clock seconds per phase, the runner's memoization
hit/miss counts, and the peak thread-queue depth any engine reached.
Experiment results carry their manifest into ``--json`` output, so a
results file is self-describing: the numbers and the conditions that
produced them travel together.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional


class RunManifest:
    """Provenance + cost record for one harness run."""

    #: bump when the serialized shape changes
    #: (v2: store_hits / store_misses, canonical-string run keys;
    #:  v3: trace health counters + causal summary from traced runs;
    #:  v4: static-analysis summaries per DTT build;
    #:  v5: trace_drop_policy + sampling/ctrace provenance;
    #:  v6: autoconvert provenance — candidates considered/accepted and
    #:  per-reason rejection counts from the conversion gate;
    #:  v7: performance-history record ids appended by this run and the
    #:  final live-telemetry heartbeat summary)
    SCHEMA_VERSION = 7

    def __init__(
        self,
        fingerprint: str,
        seed: Optional[int],
        scale: Optional[int],
        phase_seconds: Dict[str, float],
        cache_hits: int,
        cache_misses: int,
        peak_queue_depth: int,
        experiment_id: str = "",
        store_hits: int = 0,
        store_misses: int = 0,
        trace_dropped_events: int = 0,
        unmatched_closers: int = 0,
        causal: Optional[Dict] = None,
        analysis: Optional[List[Dict]] = None,
        trace_drop_policy: str = "head",
        sampling: Optional[Dict] = None,
        ctrace: Optional[Dict] = None,
        autoconvert: Optional[List[Dict]] = None,
        history: Optional[List[Dict]] = None,
        status: Optional[Dict] = None,
    ):
        self.fingerprint = fingerprint
        self.seed = seed
        self.scale = scale
        self.phase_seconds = dict(phase_seconds)
        self.cache_hits = cache_hits
        self.cache_misses = cache_misses
        self.store_hits = store_hits
        self.store_misses = store_misses
        self.peak_queue_depth = peak_queue_depth
        self.experiment_id = experiment_id
        #: events the EngineTrace discarded after its buffer filled —
        #: nonzero means the causal record (and any report built on it)
        #: is incomplete
        self.trace_dropped_events = trace_dropped_events
        #: completion/cancellation events whose activation had no open
        #: slice in the timeline pairing (mid-run attach or truncation)
        self.unmatched_closers = unmatched_closers
        #: merged :func:`repro.obs.causality.causal_summary` over the
        #: runner's traces, or None for untraced runs
        self.causal = dict(causal) if causal else None
        #: per-DTT-build static-analysis summaries
        #: (:meth:`SuiteRunner.analysis_summaries`); [] when no DTT build
        #: was run
        self.analysis = [dict(row) for row in (analysis or [])]
        #: which side of a full trace buffer survived ("head" keeps the
        #: first events — historical behavior — "tail" the most recent);
        #: interprets ``trace_dropped_events``
        self.trace_drop_policy = trace_drop_policy
        #: sampled-profiling provenance (rate, seed, per-workload CI
        #: widths); None for exact (unsampled) profiles
        self.sampling = dict(sampling) if sampling else None
        #: compressed-trace spill provenance (path, streams, events,
        #: bytes); None when no ctrace was written
        self.ctrace = dict(ctrace) if ctrace else None
        #: automatic-conversion provenance, one row per converted
        #: workload (:meth:`repro.autoconvert.gate.ConversionResult.\
        #: provenance`: candidates considered, accepted, rejection
        #: counts by reason, cycles, elimination); [] when the run
        #: performed no automatic conversion
        self.autoconvert = [dict(row) for row in (autoconvert or [])]
        #: performance-history records this run appended
        #: (:meth:`SuiteRunner.note_history`: record_id, kind, store
        #: path) — the join key between a manifest and the trend series
        #: it extended; [] when no ``--history`` was wired
        self.history = [dict(row) for row in (history or [])]
        #: final live-telemetry heartbeat summary
        #: (:meth:`repro.obs.status.StatusFile.summary`); None when no
        #: ``--status-file`` was wired
        self.status = dict(status) if status else None

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_runner(cls, runner, experiment_id: str = "") -> "RunManifest":
        """Build a manifest from a :class:`~repro.harness.runner.SuiteRunner`.

        Captures the runner's *current* accumulated state; call after the
        experiment(s) of interest have run.
        """
        stats = runner.cache_stats()
        identity = {
            "seed": runner.seed,
            "scale": runner.scale,
            # canonical workload:build:config:seed:scale strings — the
            # same form the result store hashes into content addresses
            "runs": sorted(stats["keys"]),
        }
        causal = None
        dropped = 0
        unmatched = 0
        traces = runner.traces() if hasattr(runner, "traces") else []
        if traces:
            # lazy: untraced runs never pay the causality import
            from repro.obs.causality import causal_summary
            from repro.obs.timeline import unmatched_closer_count

            causal = causal_summary(traces)
            dropped = causal["dropped_events"]
            unmatched = sum(unmatched_closer_count(trace)
                            for _name, trace in traces)
        analysis = (runner.analysis_summaries()
                    if hasattr(runner, "analysis_summaries") else [])
        sampling = (runner.sampling_provenance()
                    if hasattr(runner, "sampling_provenance") else None)
        ctrace = (runner.ctrace_provenance()
                  if hasattr(runner, "ctrace_provenance") else None)
        autoconvert = (runner.autoconvert_provenance()
                       if hasattr(runner, "autoconvert_provenance") else [])
        history = (runner.history_provenance()
                   if hasattr(runner, "history_provenance") else [])
        status = (runner.status_summary()
                  if hasattr(runner, "status_summary") else None)
        return cls(
            fingerprint=fingerprint_of(identity),
            seed=runner.seed,
            scale=runner.scale,
            phase_seconds=runner.phase_seconds(),
            cache_hits=stats["hits"],
            cache_misses=stats["misses"],
            peak_queue_depth=runner.peak_queue_depth(),
            experiment_id=experiment_id,
            store_hits=stats.get("store_hits", 0),
            store_misses=stats.get("store_misses", 0),
            trace_dropped_events=dropped,
            unmatched_closers=unmatched,
            causal=causal,
            analysis=analysis,
            trace_drop_policy=getattr(runner, "trace_keep", "head"),
            sampling=sampling,
            ctrace=ctrace,
            autoconvert=autoconvert,
            history=history,
            status=status,
        )

    # -- serialization --------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        """Wall-clock seconds summed over all recorded phases."""
        return sum(self.phase_seconds.values())

    def as_dict(self) -> Dict:
        """JSON-ready representation."""
        return {
            "schema_version": self.SCHEMA_VERSION,
            "experiment": self.experiment_id,
            "fingerprint": self.fingerprint,
            "seed": self.seed,
            "scale": self.scale,
            "phase_seconds": {
                name: round(seconds, 6)
                for name, seconds in self.phase_seconds.items()
            },
            "total_seconds": round(self.total_seconds, 6),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "peak_queue_depth": self.peak_queue_depth,
            "trace_dropped_events": self.trace_dropped_events,
            "trace_drop_policy": self.trace_drop_policy,
            "unmatched_closers": self.unmatched_closers,
            "causal": self.causal,
            "analysis": self.analysis,
            "sampling": self.sampling,
            "ctrace": self.ctrace,
            "autoconvert": self.autoconvert,
            "history": self.history,
            "status": self.status,
        }

    def to_json(self, indent: int = 2) -> str:
        """The manifest as a JSON string."""
        return json.dumps(self.as_dict(), indent=indent)

    def __repr__(self) -> str:
        return (
            f"RunManifest({self.experiment_id or 'run'}, "
            f"fingerprint={self.fingerprint[:12]}, "
            f"{len(self.phase_seconds)} phases, "
            f"hits={self.cache_hits}, misses={self.cache_misses})"
        )


def fingerprint_of(identity: Dict) -> str:
    """Stable sha256 hex digest of a JSON-serializable identity dict."""
    canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
