"""Rendering for causal provenance: the ``explain`` CLI and the HTML report.

Two consumers of :mod:`repro.obs.causality`:

* **explain** — terminal text answering "why did activation N run?"
  (full lineage: triggering store PC → registry match → queue position →
  dispatch → outcome) and "why did the store at address X never fire?"
  (same-value suppressions and duplicate absorption at that address);
* **report** — a *self-contained single-file* HTML page aggregating a
  result store and/or a ``--json`` results file: paper-claimed versus
  measured rows per experiment, every stored run, redundancy top-sites
  tables, activation latency histograms, and run-manifest provenance.

The HTML uses only inline CSS (bar charts are styled ``div`` widths), no
JavaScript and no external assets, so the file opens identically from a
CI artifact, an email attachment, or ``file://``.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence

from repro.obs.causality import (OUTCOME_ABSORBED, OUTCOME_CANCELED,
                                 OUTCOME_COMPLETED, Activation, CausalGraph)

# ---------------------------------------------------------------------------
# explain: terminal rendering
# ---------------------------------------------------------------------------


def _fmt_pos(position: Optional[int]) -> str:
    return f"position {position}" if position is not None else "(position unknown)"


def _lineage_lines(act: Activation) -> List[str]:
    """One activation's life, one step per line (trigger → outcome)."""
    unit = act.latency_unit
    lines = []
    pc = f"pc={act.pc}" if act.pc is not None else "pc=?"
    lines.append(
        f"triggering store  {pc} wrote {act.values or '?'} to address "
        f"{act.address} (thread {act.thread!r})")
    lines.append(
        "registry match    store matched the thread registry and passed the "
        "same-value filter -> fired")
    if act.outcome == OUTCOME_ABSORBED:
        lines.append(
            f"deduplicated      absorbed by activation "
            f"#{act.absorbed_into}: a same-key activation was already "
            "pending/executing, and it will observe this store's value "
            "anyway")
        return lines
    if act.enqueued_seq is not None:
        lines.append(
            f"enqueued          entered the thread queue at "
            f"{_fmt_pos(act.queue_position)}")
    if act.dispatched_seq is not None:
        wait = act.queue_wait
        waited = f" after waiting {wait} {unit}" if wait is not None else ""
        lines.append(f"dispatched        {act.dispatch_detail or 'started'}"
                     f"{waited}")
    if act.outcome == OUTCOME_COMPLETED:
        took = act.execute_time
        span = f" in {took} {unit}" if took is not None else ""
        lines.append(f"completed         support thread ran to treturn{span}")
    elif act.outcome == OUTCOME_CANCELED:
        by = (f" by activation #{act.canceled_by}'s trigger"
              if act.canceled_by is not None else "")
        lines.append(
            f"canceled          squashed mid-flight{by}: the input value "
            "changed, so the in-progress result would have been stale")
    else:
        lines.append("pending           still enqueued/executing when the "
                      "trace ended")
    return lines


def render_explain_activation(graph: CausalGraph, activation_id: int) -> str:
    """Why did activation ``activation_id`` run (or not)?"""
    act = graph.activations.get(activation_id)
    if act is None:
        known = sorted(graph.activations)
        span = (f"known ids: {known[0]}..{known[-1]}" if known
                else "the trace recorded no activations")
        return f"activation #{activation_id} not found in trace ({span})"
    lines = [f"activation #{activation_id}"]
    lines.extend("  " + line for line in _lineage_lines(act))
    chain = graph.lineage(activation_id)
    if len(chain) > 1:
        hops = " -> ".join(f"#{a.activation_id}" for a in chain)
        lines.append(f"  absorption chain  {hops} "
                     "(last one did the actual work)")
    if act.absorbed:
        absorbed = ", ".join(f"#{a}" for a in sorted(act.absorbed))
        lines.append(f"  on whose behalf   also covered duplicate/canceled "
                     f"trigger(s) {absorbed}")
    return "\n".join(lines)


def render_explain_address(graph: CausalGraph, address: int) -> str:
    """Everything that happened at one trigger address, suppression first."""
    acts, sups = graph.at_address(address)
    if not acts and not sups:
        return (f"address {address}: no triggering-store activity recorded "
                "(not a trigger address, or never stored to)")
    lines = [f"address {address}:"]
    if sups:
        pcs = sorted({s.pc for s in sups if s.pc is not None})
        at = f" at pc {', '.join(map(str, pcs))}" if pcs else ""
        lines.append(
            f"  {len(sups)} store(s){at} suppressed by the same-value "
            "filter: the stored value equaled what memory already held, so "
            "no computation could have changed")
    fired = sorted(acts, key=lambda a: a.fired_seq or 0)
    if fired:
        lines.append(f"  {len(fired)} activation(s) fired:")
        for act in fired:
            lines.append(f"    #{act.activation_id}: {act.outcome}"
                         + (f" (absorbed into #{act.absorbed_into})"
                            if act.outcome == OUTCOME_ABSORBED else ""))
    return "\n".join(lines)


def render_activation_list(graph: CausalGraph, label: str = "") -> str:
    """A one-line-per-activation index (the ``explain --list`` view)."""
    header = f"activations in {label}" if label else "activations"
    lines = [f"{header}: {len(graph.activations)} fired, "
             f"{len(graph.suppressions)} silent stores suppressed"]
    for aid in sorted(graph.activations):
        act = graph.activations[aid]
        wait = act.queue_wait
        waited = f", waited {wait} {act.latency_unit}" if wait is not None \
            else ""
        lines.append(f"  #{aid}: {act.thread} addr={act.address} "
                     f"pc={act.pc} -> {act.outcome}{waited}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# the HTML report
# ---------------------------------------------------------------------------

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2em auto; max-width: 70em;
       color: #1a1a2e; line-height: 1.45; }
h1 { border-bottom: 3px solid #0f3460; padding-bottom: .3em; }
h2 { color: #0f3460; margin-top: 2em; }
table { border-collapse: collapse; margin: 1em 0; width: 100%; }
th, td { border: 1px solid #cdd3dd; padding: .35em .6em; text-align: left;
         font-size: .92em; }
th { background: #0f3460; color: #fff; }
tr:nth-child(even) td { background: #f2f5f9; }
.pass { color: #0a7a35; font-weight: 600; }
.fail { color: #c0232c; font-weight: 600; }
.bar { background: #3282b8; height: 1em; display: inline-block;
       min-width: 1px; vertical-align: middle; }
.barrow { font-family: monospace; font-size: .85em; white-space: nowrap; }
.muted { color: #667; font-size: .85em; }
code { background: #eef1f6; padding: 0 .25em; border-radius: 3px; }
"""


def _esc(value) -> str:
    return html.escape(str(value))


def _table(headers: Sequence[str], rows: Sequence[Sequence],
           cell_html: bool = False) -> List[str]:
    out = ["<table>", "<tr>" + "".join(f"<th>{_esc(h)}</th>"
                                       for h in headers) + "</tr>"]
    for row in rows:
        cells = "".join(
            f"<td>{cell if cell_html else _esc(cell)}</td>" for cell in row)
        out.append(f"<tr>{cells}</tr>")
    out.append("</table>")
    return out


def _histogram_rows(hist: Sequence[Sequence]) -> List[str]:
    """A label/count histogram as inline-CSS bar rows."""
    if not hist:
        return ["<p class='muted'>no samples</p>"]
    peak = max(count for _label, count in hist) or 1
    out = []
    for label, count in hist:
        width = int(260 * count / peak)
        out.append(
            f"<div class='barrow'>{_esc(label):>6} "
            f"<span class='bar' style='width:{width}px'></span> "
            f"{count}</div>")
    return out


def _experiments_section(results: List[Dict]) -> List[str]:
    out = ["<h2>Experiments: paper-claimed vs measured</h2>"]
    rows = []
    for result in results:
        checks = result.get("checks", [])
        passed = sum(1 for c in checks if c.get("passed"))
        measured = "<br>".join(
            f"<span class='{'pass' if c.get('passed') else 'fail'}'>"
            f"{'PASS' if c.get('passed') else 'FAIL'}</span> "
            f"{_esc(c.get('name', ''))}"
            + (f" <span class='muted'>({_esc(c['detail'])})</span>"
               if c.get("detail") else "")
            for c in checks) or "<span class='muted'>no checks</span>"
        rows.append([
            f"<code>{_esc(result.get('experiment', '?'))}</code>",
            _esc(result.get("title", "")),
            _esc(result.get("paper_claim", "")) or
            "<span class='muted'>shape-only</span>",
            measured,
            f"{passed}/{len(checks)}",
        ])
    out.extend(_table(
        ["experiment", "title", "paper claim", "measured checks", "passed"],
        rows, cell_html=True))
    return out


def _manifest_section(results: List[Dict]) -> List[str]:
    manifests = [(r.get("experiment", "?"), r["manifest"])
                 for r in results if r.get("manifest")]
    if not manifests:
        return []
    out = ["<h2>Run manifests</h2>"]
    rows = []
    for experiment, m in manifests:
        causal = m.get("causal") or {}
        rows.append([
            experiment, m.get("fingerprint", "")[:12],
            f"{m.get('total_seconds', 0):.3f}",
            f"{m.get('cache_hits', 0)}/{m.get('cache_misses', 0)}",
            f"{m.get('store_hits', 0)}/{m.get('store_misses', 0)}",
            m.get("peak_queue_depth", 0),
            m.get("trace_dropped_events", 0),
            m.get("unmatched_closers", 0),
            causal.get("activations", "—"),
        ])
    out.extend(_table(
        ["experiment", "fingerprint", "seconds", "cache hit/miss",
         "store hit/miss", "peak queue", "dropped events",
         "unmatched closers", "activations"], rows))
    return out


def _latency_section(results: List[Dict]) -> List[str]:
    merged_hist: List[List] = []
    unit = None
    from repro.obs.causality import merge_histograms
    for result in results:
        causal = (result.get("manifest") or {}).get("causal") or {}
        hist = causal.get("queue_wait_hist") or []
        if any(count for _l, count in hist):
            merged_hist = merge_histograms(merged_hist, hist)
            unit = unit or causal.get("latency_unit")
    if not merged_hist:
        return []
    out = [
        "<h2>Activation queue-wait latency</h2>",
        f"<p class='muted'>time from trigger firing to dispatch, in "
        f"{_esc(unit or 'events')}; aggregated over every traced run in "
        "the results file</p>",
    ]
    out.extend(_histogram_rows(merged_hist))
    return out


def _store_section(entries: List[Dict]) -> List[str]:
    out = [
        "<h2>Stored runs</h2>",
        f"<p class='muted'>{len(entries)} entries in the result store; "
        "every entry is content-addressed by the full run identity</p>",
    ]
    rows = []
    for entry in entries:
        payload = entry.get("payload", {})
        summary = ""
        if entry.get("kind") == "profile":
            loads = payload.get("loads", {})
            frac = loads.get("redundant_load_fraction")
            if frac is not None:
                summary = f"redundant loads: {frac:.1%}"
        else:
            cycles = payload.get("cycles")
            if cycles is not None:
                summary = f"{cycles} cycles"
        rows.append([
            f"<code>{_esc(entry.get('canonical', '?'))}</code>",
            _esc(entry.get("kind", "?")),
            f"{entry.get('elapsed_seconds', 0):.3f}",
            _esc(summary),
        ])
    out.extend(_table(["run", "kind", "seconds", "headline"], rows,
                      cell_html=True))
    return out


def _sites_section(entries: List[Dict]) -> List[str]:
    profiled = [(e.get("payload", {}).get("name", "?"),
                 e.get("payload", {}).get("sites"))
                for e in entries if e.get("kind") == "profile"
                and e.get("payload", {}).get("sites")]
    if not profiled:
        return []
    out = ["<h2>Redundancy top sites</h2>",
           "<p class='muted'>hottest static sites per profiled workload — "
           "where the redundant work the paper targets actually lives</p>"]
    for name, sites in profiled:
        out.append(f"<h3><code>{_esc(name)}</code></h3>")
        load_rows = [
            [s["pc"], s["dynamic"], s["redundant"],
             f"{s['redundant'] / s['dynamic']:.1%}" if s["dynamic"] else "—"]
            for s in sites.get("loads", [])[:10]]
        if load_rows:
            out.append("<p>redundant load sites:</p>")
            out.extend(_table(["pc", "dynamic", "redundant", "fraction"],
                              load_rows))
        store_rows = [
            [s["pc"], s["dynamic"], s["silent"],
             "yes" if s.get("triggering") else "no"]
            for s in sites.get("stores", [])[:10]]
        if store_rows:
            out.append("<p>store sites (silent stores are the same-value "
                       "filter's prey):</p>")
            out.extend(_table(["pc", "dynamic", "silent", "triggering"],
                              store_rows))
    return out


def _ctrace_section(streams: List) -> List[str]:
    """Per-stream causal summary of a compressed trace file.

    ``streams`` are ``(name, stream)`` pairs from
    :meth:`~repro.obs.ctrace.CTraceReader.named_streams`; each stream is
    decoded in one pass through :meth:`CausalGraph.from_trace`, so the
    report builds from arbitrarily long spilled runs without ever
    holding an event list.
    """
    out = ["<h2>Compressed traces</h2>",
           "<p class='muted'>Causal summary decoded from the spilled "
           "event stream (<code>run --ctrace-out</code>); complete even "
           "when the in-memory trace buffer dropped events.</p>"]
    headers = ("stream", "events", "bytes", "activations", "completed",
               "canceled", "absorbed", "suppressed", "consume clean",
               "consume wait", "buffer dropped")
    rows = []
    for name, stream in streams:
        graph = CausalGraph.from_trace(stream)
        summary = graph.summary()
        rows.append((
            name, stream.event_count, stream.compressed_bytes,
            summary["activations"], summary["completed"],
            summary["canceled"], summary["absorbed"],
            summary["suppressed_silent"], summary["consume_clean"],
            summary["consume_wait"],
            stream.meta.get("memory_dropped", 0),
        ))
    out.extend(_table(headers, rows))
    return out


def html_report(store_entries: Optional[List[Dict]] = None,
                results: Optional[List[Dict]] = None,
                title: str = "DTT reproduction report",
                ctrace_streams: Optional[List] = None) -> str:
    """The whole report as one self-contained HTML string.

    ``store_entries`` are :meth:`~repro.exec.store.ResultStore.entries`
    dicts; ``results`` is the list a ``run --json`` invocation wrote
    (each item an ``ExperimentResult.as_dict()``, manifest included);
    ``ctrace_streams`` are ``(name, stream)`` pairs from a compressed
    trace file.  Any side may be absent; sections render from whatever
    is there.
    """
    store_entries = store_entries or []
    results = results or []
    ctrace_streams = ctrace_streams or []
    parts = [
        "<!DOCTYPE html>",
        "<html lang='en'>",
        "<head>",
        "<meta charset='utf-8'>",
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style>",
        "</head>",
        "<body>",
        f"<h1>{_esc(title)}</h1>",
        "<p class='muted'>Data-triggered threads (Tseng &amp; Tullsen, "
        "HPCA 2011) — generated by <code>dtt-harness report</code>; "
        "single file, no external assets.</p>",
    ]
    if results:
        parts.extend(_experiments_section(results))
        parts.extend(_latency_section(results))
        parts.extend(_manifest_section(results))
    if store_entries:
        parts.extend(_store_section(store_entries))
        parts.extend(_sites_section(store_entries))
    if ctrace_streams:
        parts.extend(_ctrace_section(ctrace_streams))
    if not results and not store_entries and not ctrace_streams:
        parts.append("<p>Nothing to report: no store entries, no "
                     "results file, and no compressed trace given.</p>")
    parts.extend(["</body>", "</html>"])
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# the trend dashboard (dtt-harness dashboard)
# ---------------------------------------------------------------------------

_DASH_CSS = _CSS + """
.v-ok { color: #0a7a35; font-weight: 600; }
.v-regression, .v-changepoint { color: #c0232c; font-weight: 700; }
.v-improvement { color: #1b6ec2; font-weight: 600; }
.v-insufficient-data, .v-info { color: #667; }
.spark { vertical-align: middle; }
.flame { margin: 1em 0; }
"""

#: verdicts worth a row in the dashboard's flagged table
_DASH_INTERESTING = ("regression", "changepoint", "improvement")


def _sparkline_svg(values: Sequence[float], verdict: str,
                   width: int = 140, height: int = 28) -> str:
    """One metric series as an inline polyline sparkline.

    Scaled to its own min/max (a sparkline shows shape, not magnitude);
    the newest point gets a dot colored by the series verdict.
    """
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    pad = 3

    def xy(index: int, value: float):
        x = pad + (width - 2 * pad) * (index / max(1, len(values) - 1))
        y = pad + (height - 2 * pad) * (1.0 - (value - lo) / span)
        return x, y

    points = " ".join(f"{x:.1f},{y:.1f}"
                      for x, y in (xy(i, v) for i, v in enumerate(values)))
    dot_x, dot_y = xy(len(values) - 1, values[-1])
    dot_fill = ("#c0232c" if verdict in ("regression", "changepoint")
                else "#1b6ec2" if verdict == "improvement" else "#0a7a35")
    return (
        f'<svg class="spark" xmlns="http://www.w3.org/2000/svg" '
        f'width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
        f'<polyline points="{points}" fill="none" stroke="#3282b8" '
        f'stroke-width="1.5" />'
        f'<circle cx="{dot_x:.1f}" cy="{dot_y:.1f}" r="3" '
        f'fill="{dot_fill}" /></svg>')


def _verdict_cell(verdict) -> str:
    """A verdict badge, linked to the flame anchor when its note says so."""
    return f"<span class='v-{_esc(verdict.verdict)}'>{_esc(verdict.verdict)}</span>"


def _flame_link(verdict, flames: Dict) -> str:
    """An anchor into the flame section for this verdict's workload, if
    one was rendered (bench rows are named by workload; manifest
    ``autoconvert:<workload>`` rows carry it as the suffix)."""
    candidates = (verdict.row, verdict.row.rsplit(":", 1)[-1])
    for name in candidates:
        if name in flames:
            return (f"<a href='#flame-{_esc(name)}'>cycle "
                    f"attribution</a>")
    return ""


def _trend_table(verdicts, flames: Dict, caption: str) -> List[str]:
    if not verdicts:
        return []
    rows = []
    for v in verdicts:
        movement = (f"{v.ewma:g} &rarr; {v.latest:g} ({v.relative:+.1%})"
                    if v.ewma else f"{v.latest:g}")
        rows.append([
            f"<code>{_esc(v.row)}</code>",
            f"<code>{_esc(v.metric)}</code>",
            _sparkline_svg(v.values, v.verdict),
            len(v.values),
            movement,
            _verdict_cell(v),
            " ".join(filter(None, [_esc(v.note) if v.note else "",
                                   _flame_link(v, flames)])),
        ])
    out = [f"<h3>{_esc(caption)}</h3>"]
    out.extend(_table(
        ["row", "metric", "trend", "runs", "EWMA &rarr; latest", "verdict",
         "notes"], rows, cell_html=True))
    return out


def _flame_section(flames: Dict) -> List[str]:
    from repro.obs.flame import flame_svg, folded_stacks, hottest_site

    out = ["<h2>Cycle attribution</h2>",
           "<p class='muted'>Per-static-site support-thread cycles from "
           "the causal trace, joined with the timing simulator's run "
           "total — a flagged cycle trend names the store site that "
           "owns the growth. Hover a cell for trigger outcomes and "
           "silent-store counts.</p>"]
    for workload in sorted(flames):
        attribution = flames[workload]
        out.append(f"<h3 id='flame-{_esc(workload)}'>"
                   f"<code>{_esc(workload)}</code></h3>")
        hot = hottest_site(attribution)
        if hot is not None:
            out.append(
                f"<p>hottest site: <code>{_esc(hot['name'])}</code> "
                f"({hot['value']:g} {_esc(attribution['unit'])}) "
                f"<span class='muted'>&mdash; {_esc(hot['detail'])}"
                "</span></p>")
        out.append(f"<div class='flame'>{flame_svg(attribution)}</div>")
        folded = folded_stacks(attribution)
        if folded:
            out.append("<details><summary>folded stacks "
                       "(flamegraph.pl format)</summary>"
                       f"<pre>{_esc(folded)}</pre></details>")
    return out


def _verdict_catalog_section() -> List[str]:
    from repro.obs.trends import GATING_VERDICTS, VERDICTS

    rows = [[f"<code>{_esc(code)}</code>",
             "yes" if code in GATING_VERDICTS else "no",
             _esc(description)]
            for code, description in VERDICTS.items()]
    out = ["<h2>Verdict catalog</h2>"]
    out.extend(_table(["verdict", "gates CI", "meaning"], rows,
                      cell_html=True))
    return out


def trend_dashboard_html(report, flames: Optional[Dict] = None,
                         title: str = "DTT performance trends") -> str:
    """The trend dashboard as one self-contained HTML string.

    ``report`` is a :class:`~repro.obs.trends.TrendReport`; ``flames``
    maps workload name to a :func:`~repro.obs.flame.attribute_cycles`
    attribution dict, rendered as anchored SVG flame sections that
    flagged verdict rows deep-link.  Same contract as
    :func:`html_report`: inline CSS + inline SVG, no JavaScript, no
    external assets.
    """
    flames = flames or {}
    flagged = [v for v in report.verdicts
               if v.verdict in _DASH_INTERESTING]
    quiet = [v for v in report.verdicts
             if v.verdict not in _DASH_INTERESTING]
    parts = [
        "<!DOCTYPE html>",
        "<html lang='en'>",
        "<head>",
        "<meta charset='utf-8'>",
        f"<title>{_esc(title)}</title>",
        f"<style>{_DASH_CSS}</style>",
        "</head>",
        "<body>",
        f"<h1>{_esc(title)}</h1>",
        f"<p class='muted'>History: <code>{_esc(report.source)}</code> "
        f"&mdash; {report.record_count} record(s) in window "
        f"{report.window}, tolerance {report.tolerance:.1%}, minimum "
        f"{report.min_runs} run(s) per series before gating; generated "
        "by <code>dtt-harness dashboard</code>, single file, no "
        "external assets.</p>",
    ]
    counts = ", ".join(
        f"{count} {verdict}"
        for verdict, count in sorted(
            report.as_dict()["verdict_counts"].items()))
    gate = ("<span class='v-regression'>GATE FAILS</span>"
            if report.has_regressions else "<span class='v-ok'>gate "
            "passes</span>")
    parts.append(f"<p>{gate} &mdash; {len(report.flagged)} gating "
                 f"verdict(s) [{_esc(counts) or 'no series'}]</p>")
    parts.append("<h2>Trends</h2>")
    parts.extend(_trend_table(flagged, flames,
                              "Flagged series (regressions, changepoints, "
                              "improvements)"))
    if not flagged:
        parts.append("<p class='muted'>No flagged series: every judged "
                     "metric is inside its trend's prediction "
                     "interval.</p>")
    parts.extend(_trend_table(quiet, flames, "All other series"))
    if flames:
        parts.extend(_flame_section(flames))
    parts.extend(_verdict_catalog_section())
    parts.extend(["</body>", "</html>"])
    return "\n".join(parts)
