"""Rendering for causal provenance: the ``explain`` CLI and the HTML report.

Two consumers of :mod:`repro.obs.causality`:

* **explain** — terminal text answering "why did activation N run?"
  (full lineage: triggering store PC → registry match → queue position →
  dispatch → outcome) and "why did the store at address X never fire?"
  (same-value suppressions and duplicate absorption at that address);
* **report** — a *self-contained single-file* HTML page aggregating a
  result store and/or a ``--json`` results file: paper-claimed versus
  measured rows per experiment, every stored run, redundancy top-sites
  tables, activation latency histograms, and run-manifest provenance.

The HTML uses only inline CSS (bar charts are styled ``div`` widths), no
JavaScript and no external assets, so the file opens identically from a
CI artifact, an email attachment, or ``file://``.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence

from repro.obs.causality import (OUTCOME_ABSORBED, OUTCOME_CANCELED,
                                 OUTCOME_COMPLETED, Activation, CausalGraph)

# ---------------------------------------------------------------------------
# explain: terminal rendering
# ---------------------------------------------------------------------------


def _fmt_pos(position: Optional[int]) -> str:
    return f"position {position}" if position is not None else "(position unknown)"


def _lineage_lines(act: Activation) -> List[str]:
    """One activation's life, one step per line (trigger → outcome)."""
    unit = act.latency_unit
    lines = []
    pc = f"pc={act.pc}" if act.pc is not None else "pc=?"
    lines.append(
        f"triggering store  {pc} wrote {act.values or '?'} to address "
        f"{act.address} (thread {act.thread!r})")
    lines.append(
        "registry match    store matched the thread registry and passed the "
        "same-value filter -> fired")
    if act.outcome == OUTCOME_ABSORBED:
        lines.append(
            f"deduplicated      absorbed by activation "
            f"#{act.absorbed_into}: a same-key activation was already "
            "pending/executing, and it will observe this store's value "
            "anyway")
        return lines
    if act.enqueued_seq is not None:
        lines.append(
            f"enqueued          entered the thread queue at "
            f"{_fmt_pos(act.queue_position)}")
    if act.dispatched_seq is not None:
        wait = act.queue_wait
        waited = f" after waiting {wait} {unit}" if wait is not None else ""
        lines.append(f"dispatched        {act.dispatch_detail or 'started'}"
                     f"{waited}")
    if act.outcome == OUTCOME_COMPLETED:
        took = act.execute_time
        span = f" in {took} {unit}" if took is not None else ""
        lines.append(f"completed         support thread ran to treturn{span}")
    elif act.outcome == OUTCOME_CANCELED:
        by = (f" by activation #{act.canceled_by}'s trigger"
              if act.canceled_by is not None else "")
        lines.append(
            f"canceled          squashed mid-flight{by}: the input value "
            "changed, so the in-progress result would have been stale")
    else:
        lines.append("pending           still enqueued/executing when the "
                      "trace ended")
    return lines


def render_explain_activation(graph: CausalGraph, activation_id: int) -> str:
    """Why did activation ``activation_id`` run (or not)?"""
    act = graph.activations.get(activation_id)
    if act is None:
        known = sorted(graph.activations)
        span = (f"known ids: {known[0]}..{known[-1]}" if known
                else "the trace recorded no activations")
        return f"activation #{activation_id} not found in trace ({span})"
    lines = [f"activation #{activation_id}"]
    lines.extend("  " + line for line in _lineage_lines(act))
    chain = graph.lineage(activation_id)
    if len(chain) > 1:
        hops = " -> ".join(f"#{a.activation_id}" for a in chain)
        lines.append(f"  absorption chain  {hops} "
                     "(last one did the actual work)")
    if act.absorbed:
        absorbed = ", ".join(f"#{a}" for a in sorted(act.absorbed))
        lines.append(f"  on whose behalf   also covered duplicate/canceled "
                     f"trigger(s) {absorbed}")
    return "\n".join(lines)


def render_explain_address(graph: CausalGraph, address: int) -> str:
    """Everything that happened at one trigger address, suppression first."""
    acts, sups = graph.at_address(address)
    if not acts and not sups:
        return (f"address {address}: no triggering-store activity recorded "
                "(not a trigger address, or never stored to)")
    lines = [f"address {address}:"]
    if sups:
        pcs = sorted({s.pc for s in sups if s.pc is not None})
        at = f" at pc {', '.join(map(str, pcs))}" if pcs else ""
        lines.append(
            f"  {len(sups)} store(s){at} suppressed by the same-value "
            "filter: the stored value equaled what memory already held, so "
            "no computation could have changed")
    fired = sorted(acts, key=lambda a: a.fired_seq or 0)
    if fired:
        lines.append(f"  {len(fired)} activation(s) fired:")
        for act in fired:
            lines.append(f"    #{act.activation_id}: {act.outcome}"
                         + (f" (absorbed into #{act.absorbed_into})"
                            if act.outcome == OUTCOME_ABSORBED else ""))
    return "\n".join(lines)


def render_activation_list(graph: CausalGraph, label: str = "") -> str:
    """A one-line-per-activation index (the ``explain --list`` view)."""
    header = f"activations in {label}" if label else "activations"
    lines = [f"{header}: {len(graph.activations)} fired, "
             f"{len(graph.suppressions)} silent stores suppressed"]
    for aid in sorted(graph.activations):
        act = graph.activations[aid]
        wait = act.queue_wait
        waited = f", waited {wait} {act.latency_unit}" if wait is not None \
            else ""
        lines.append(f"  #{aid}: {act.thread} addr={act.address} "
                     f"pc={act.pc} -> {act.outcome}{waited}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# the HTML report
# ---------------------------------------------------------------------------

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2em auto; max-width: 70em;
       color: #1a1a2e; line-height: 1.45; }
h1 { border-bottom: 3px solid #0f3460; padding-bottom: .3em; }
h2 { color: #0f3460; margin-top: 2em; }
table { border-collapse: collapse; margin: 1em 0; width: 100%; }
th, td { border: 1px solid #cdd3dd; padding: .35em .6em; text-align: left;
         font-size: .92em; }
th { background: #0f3460; color: #fff; }
tr:nth-child(even) td { background: #f2f5f9; }
.pass { color: #0a7a35; font-weight: 600; }
.fail { color: #c0232c; font-weight: 600; }
.bar { background: #3282b8; height: 1em; display: inline-block;
       min-width: 1px; vertical-align: middle; }
.barrow { font-family: monospace; font-size: .85em; white-space: nowrap; }
.muted { color: #667; font-size: .85em; }
code { background: #eef1f6; padding: 0 .25em; border-radius: 3px; }
"""


def _esc(value) -> str:
    return html.escape(str(value))


def _table(headers: Sequence[str], rows: Sequence[Sequence],
           cell_html: bool = False) -> List[str]:
    out = ["<table>", "<tr>" + "".join(f"<th>{_esc(h)}</th>"
                                       for h in headers) + "</tr>"]
    for row in rows:
        cells = "".join(
            f"<td>{cell if cell_html else _esc(cell)}</td>" for cell in row)
        out.append(f"<tr>{cells}</tr>")
    out.append("</table>")
    return out


def _histogram_rows(hist: Sequence[Sequence]) -> List[str]:
    """A label/count histogram as inline-CSS bar rows."""
    if not hist:
        return ["<p class='muted'>no samples</p>"]
    peak = max(count for _label, count in hist) or 1
    out = []
    for label, count in hist:
        width = int(260 * count / peak)
        out.append(
            f"<div class='barrow'>{_esc(label):>6} "
            f"<span class='bar' style='width:{width}px'></span> "
            f"{count}</div>")
    return out


def _experiments_section(results: List[Dict]) -> List[str]:
    out = ["<h2>Experiments: paper-claimed vs measured</h2>"]
    rows = []
    for result in results:
        checks = result.get("checks", [])
        passed = sum(1 for c in checks if c.get("passed"))
        measured = "<br>".join(
            f"<span class='{'pass' if c.get('passed') else 'fail'}'>"
            f"{'PASS' if c.get('passed') else 'FAIL'}</span> "
            f"{_esc(c.get('name', ''))}"
            + (f" <span class='muted'>({_esc(c['detail'])})</span>"
               if c.get("detail") else "")
            for c in checks) or "<span class='muted'>no checks</span>"
        rows.append([
            f"<code>{_esc(result.get('experiment', '?'))}</code>",
            _esc(result.get("title", "")),
            _esc(result.get("paper_claim", "")) or
            "<span class='muted'>shape-only</span>",
            measured,
            f"{passed}/{len(checks)}",
        ])
    out.extend(_table(
        ["experiment", "title", "paper claim", "measured checks", "passed"],
        rows, cell_html=True))
    return out


def _manifest_section(results: List[Dict]) -> List[str]:
    manifests = [(r.get("experiment", "?"), r["manifest"])
                 for r in results if r.get("manifest")]
    if not manifests:
        return []
    out = ["<h2>Run manifests</h2>"]
    rows = []
    for experiment, m in manifests:
        causal = m.get("causal") or {}
        rows.append([
            experiment, m.get("fingerprint", "")[:12],
            f"{m.get('total_seconds', 0):.3f}",
            f"{m.get('cache_hits', 0)}/{m.get('cache_misses', 0)}",
            f"{m.get('store_hits', 0)}/{m.get('store_misses', 0)}",
            m.get("peak_queue_depth", 0),
            m.get("trace_dropped_events", 0),
            m.get("unmatched_closers", 0),
            causal.get("activations", "—"),
        ])
    out.extend(_table(
        ["experiment", "fingerprint", "seconds", "cache hit/miss",
         "store hit/miss", "peak queue", "dropped events",
         "unmatched closers", "activations"], rows))
    return out


def _latency_section(results: List[Dict]) -> List[str]:
    merged_hist: List[List] = []
    unit = None
    from repro.obs.causality import merge_histograms
    for result in results:
        causal = (result.get("manifest") or {}).get("causal") or {}
        hist = causal.get("queue_wait_hist") or []
        if any(count for _l, count in hist):
            merged_hist = merge_histograms(merged_hist, hist)
            unit = unit or causal.get("latency_unit")
    if not merged_hist:
        return []
    out = [
        "<h2>Activation queue-wait latency</h2>",
        f"<p class='muted'>time from trigger firing to dispatch, in "
        f"{_esc(unit or 'events')}; aggregated over every traced run in "
        "the results file</p>",
    ]
    out.extend(_histogram_rows(merged_hist))
    return out


def _store_section(entries: List[Dict]) -> List[str]:
    out = [
        "<h2>Stored runs</h2>",
        f"<p class='muted'>{len(entries)} entries in the result store; "
        "every entry is content-addressed by the full run identity</p>",
    ]
    rows = []
    for entry in entries:
        payload = entry.get("payload", {})
        summary = ""
        if entry.get("kind") == "profile":
            loads = payload.get("loads", {})
            frac = loads.get("redundant_load_fraction")
            if frac is not None:
                summary = f"redundant loads: {frac:.1%}"
        else:
            cycles = payload.get("cycles")
            if cycles is not None:
                summary = f"{cycles} cycles"
        rows.append([
            f"<code>{_esc(entry.get('canonical', '?'))}</code>",
            _esc(entry.get("kind", "?")),
            f"{entry.get('elapsed_seconds', 0):.3f}",
            _esc(summary),
        ])
    out.extend(_table(["run", "kind", "seconds", "headline"], rows,
                      cell_html=True))
    return out


def _sites_section(entries: List[Dict]) -> List[str]:
    profiled = [(e.get("payload", {}).get("name", "?"),
                 e.get("payload", {}).get("sites"))
                for e in entries if e.get("kind") == "profile"
                and e.get("payload", {}).get("sites")]
    if not profiled:
        return []
    out = ["<h2>Redundancy top sites</h2>",
           "<p class='muted'>hottest static sites per profiled workload — "
           "where the redundant work the paper targets actually lives</p>"]
    for name, sites in profiled:
        out.append(f"<h3><code>{_esc(name)}</code></h3>")
        load_rows = [
            [s["pc"], s["dynamic"], s["redundant"],
             f"{s['redundant'] / s['dynamic']:.1%}" if s["dynamic"] else "—"]
            for s in sites.get("loads", [])[:10]]
        if load_rows:
            out.append("<p>redundant load sites:</p>")
            out.extend(_table(["pc", "dynamic", "redundant", "fraction"],
                              load_rows))
        store_rows = [
            [s["pc"], s["dynamic"], s["silent"],
             "yes" if s.get("triggering") else "no"]
            for s in sites.get("stores", [])[:10]]
        if store_rows:
            out.append("<p>store sites (silent stores are the same-value "
                       "filter's prey):</p>")
            out.extend(_table(["pc", "dynamic", "silent", "triggering"],
                              store_rows))
    return out


def _ctrace_section(streams: List) -> List[str]:
    """Per-stream causal summary of a compressed trace file.

    ``streams`` are ``(name, stream)`` pairs from
    :meth:`~repro.obs.ctrace.CTraceReader.named_streams`; each stream is
    decoded in one pass through :meth:`CausalGraph.from_trace`, so the
    report builds from arbitrarily long spilled runs without ever
    holding an event list.
    """
    out = ["<h2>Compressed traces</h2>",
           "<p class='muted'>Causal summary decoded from the spilled "
           "event stream (<code>run --ctrace-out</code>); complete even "
           "when the in-memory trace buffer dropped events.</p>"]
    headers = ("stream", "events", "bytes", "activations", "completed",
               "canceled", "absorbed", "suppressed", "consume clean",
               "consume wait", "buffer dropped")
    rows = []
    for name, stream in streams:
        graph = CausalGraph.from_trace(stream)
        summary = graph.summary()
        rows.append((
            name, stream.event_count, stream.compressed_bytes,
            summary["activations"], summary["completed"],
            summary["canceled"], summary["absorbed"],
            summary["suppressed_silent"], summary["consume_clean"],
            summary["consume_wait"],
            stream.meta.get("memory_dropped", 0),
        ))
    out.extend(_table(headers, rows))
    return out


def html_report(store_entries: Optional[List[Dict]] = None,
                results: Optional[List[Dict]] = None,
                title: str = "DTT reproduction report",
                ctrace_streams: Optional[List] = None) -> str:
    """The whole report as one self-contained HTML string.

    ``store_entries`` are :meth:`~repro.exec.store.ResultStore.entries`
    dicts; ``results`` is the list a ``run --json`` invocation wrote
    (each item an ``ExperimentResult.as_dict()``, manifest included);
    ``ctrace_streams`` are ``(name, stream)`` pairs from a compressed
    trace file.  Any side may be absent; sections render from whatever
    is there.
    """
    store_entries = store_entries or []
    results = results or []
    ctrace_streams = ctrace_streams or []
    parts = [
        "<!DOCTYPE html>",
        "<html lang='en'>",
        "<head>",
        "<meta charset='utf-8'>",
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style>",
        "</head>",
        "<body>",
        f"<h1>{_esc(title)}</h1>",
        "<p class='muted'>Data-triggered threads (Tseng &amp; Tullsen, "
        "HPCA 2011) — generated by <code>dtt-harness report</code>; "
        "single file, no external assets.</p>",
    ]
    if results:
        parts.extend(_experiments_section(results))
        parts.extend(_latency_section(results))
        parts.extend(_manifest_section(results))
    if store_entries:
        parts.extend(_store_section(store_entries))
        parts.extend(_sites_section(store_entries))
    if ctrace_streams:
        parts.extend(_ctrace_section(ctrace_streams))
    if not results and not store_entries and not ctrace_streams:
        parts.append("<p>Nothing to report: no store entries, no "
                     "results file, and no compressed trace given.</p>")
    parts.extend(["</body>", "</html>"])
    return "\n".join(parts)
