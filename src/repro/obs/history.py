"""The performance-history store: append-only JSONL of every bench run.

Every prior surface locked wins in with *single-snapshot* artifacts —
``BENCH_*.json`` plus a pairwise ``compare`` — which detects "worse than
the committed baseline" but cannot see trajectories: slow drift, noisy-
but-real regressions, or when a level shift actually landed.  This
module is the longitudinal half: a :class:`HistoryStore` under
``benchmarks/history/`` holds one :func:`make_record` per bench /
convert / harness invocation, keyed by git sha, timestamp, host
fingerprint, and bench kind, so :mod:`repro.obs.trends` can analyze the
whole series instead of one pair.

Records are **content-addressed**: ``record_id`` is the sha256 of the
record's canonical JSON (everything but the id itself), so re-appending
the same measurement is idempotent at read time — :meth:`HistoryStore.
records` deduplicates by id — while the file itself stays strictly
append-only.  Appends are a single ``O_APPEND`` ``write`` of one
newline-terminated line, which POSIX keeps atomic across concurrent
writers: two processes appending to one ``ci.jsonl`` interleave whole
lines, never bytes.  Torn or foreign lines (a crashed writer's partial
tail, hand edits) are skipped and counted, never fatal — history is
evidence, not a ledger that can deadlock CI.

Layout: a store opened on a *directory* keeps one ``<kind>.jsonl`` file
per record kind (``bench_interpreter.jsonl``, ``manifest.jsonl``, ...);
opened on a ``.jsonl`` *file* everything lands in that one file — the
shape CI uses for its single ``benchmarks/history/ci.jsonl`` stream.

Numeric rows are extracted by the same loaders ``dtt-harness compare``
uses (:mod:`repro.exec.compare`), so a metric means the same thing in a
pairwise diff and in a trend series.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import re
import subprocess
import sys
import time
from typing import Dict, Iterable, List, Optional

from repro.errors import HistoryError

#: serialized record shape; bump when fields change meaning
RECORD_SCHEMA = 1

#: default store location (relative to the repo / invocation cwd)
DEFAULT_HISTORY_DIR = os.path.join("benchmarks", "history")

_KIND_RE = re.compile(r"[^a-zA-Z0-9_.-]+")


def host_fingerprint() -> str:
    """A short, stable fingerprint of the executing host.

    Wall-clock metrics (instructions/sec, encode throughput) are only
    comparable on one machine class; the fingerprint lets the trend
    analyzer (or a reader) partition a shared history file by host.
    Hashes node name, machine architecture, and the Python major.minor —
    enough to separate "my laptop" from "the CI runner" without leaking
    a full hostname into committed artifacts.
    """
    identity = "|".join((
        platform.node(), platform.machine(),
        f"py{sys.version_info.major}.{sys.version_info.minor}",
    ))
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()[:12]


def current_git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The checked-out commit sha, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and len(sha) >= 7 else None


def record_id_of(record: Dict) -> str:
    """sha256 content address of a record (its ``record_id`` excluded)."""
    content = {k: v for k, v in record.items() if k != "record_id"}
    canonical = json.dumps(content, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def make_record(kind: str, rows: Dict[str, Dict[str, float]],
                source: str = "", meta: Optional[Dict] = None,
                git_sha: Optional[str] = None,
                host: Optional[str] = None,
                timestamp: Optional[float] = None) -> Dict:
    """One history record: numeric ``rows`` plus run provenance.

    ``rows`` maps row name -> {metric: number} (the exact cell shape the
    compare loaders produce).  ``git_sha`` / ``host`` / ``timestamp``
    default to the current checkout, host, and wall clock; pass them
    explicitly to build synthetic series in tests.
    """
    if not kind:
        raise HistoryError("history record needs a non-empty kind")
    clean_rows: Dict[str, Dict[str, float]] = {}
    for row, cells in (rows or {}).items():
        numeric = {
            metric: value for metric, value in cells.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        if numeric:
            clean_rows[str(row)] = numeric
    if not clean_rows:
        raise HistoryError(
            f"history record of kind {kind!r} has no numeric rows")
    record = {
        "schema": RECORD_SCHEMA,
        "kind": kind,
        "timestamp": time.time() if timestamp is None else float(timestamp),
        "git_sha": current_git_sha() if git_sha is None else git_sha,
        "host": host_fingerprint() if host is None else host,
        "source": source,
        "rows": clean_rows,
    }
    if meta:
        record["meta"] = dict(meta)
    record["record_id"] = record_id_of(record)
    return record


def record_from_payload(data, source: str = "",
                        **provenance) -> Dict:
    """Build a record from any JSON payload ``compare`` understands.

    Accepts a ``bench_*`` dict (``dtt-harness bench`` / ``convert
    --bench-out``), a run-manifest dict, or a ``run --json`` results
    list; the record's rows are exactly the cells the corresponding
    compare loader extracts, and its kind is the bench ``kind`` (or
    ``manifest`` / ``results``).
    """
    # the compare loaders are the single source of truth for which
    # numeric cells a payload carries; import lazily (compare pulls in
    # the exec layer)
    from repro.exec import compare as _compare

    meta: Dict = {}
    if isinstance(data, list):
        result_set = _compare._load_results(source or "<results>", data)
        kind = "results"
    elif isinstance(data, dict) and str(data.get("kind", "")
                                        ).startswith("bench"):
        result_set = _compare._load_bench(source or "<bench>", data)
        kind = str(data["kind"])
        for field in ("schema", "repeat", "config"):
            if field in data:
                meta[field] = data[field]
    elif isinstance(data, dict) and "phase_seconds" in data:
        result_set = _compare._load_manifest(source or "<manifest>", data)
        kind = "manifest"
        if data.get("experiment"):
            meta["experiment"] = data["experiment"]
        if data.get("schema_version") is not None:
            meta["schema_version"] = data["schema_version"]
    else:
        raise HistoryError(
            f"{source or 'payload'} is neither a bench file, a run "
            "manifest, nor a results list — nothing to append")
    return make_record(kind, result_set.cells, source=source, meta=meta,
                       **provenance)


class HistoryStore:
    """Append-only JSONL store of performance-history records.

    ``path`` is either a directory (one ``<kind>.jsonl`` per record
    kind, created on demand) or a single ``*.jsonl`` file (all kinds in
    one stream).  Writers never rewrite existing bytes; readers
    tolerate and count corruption.
    """

    def __init__(self, path: str = DEFAULT_HISTORY_DIR):
        self.path = path
        self._single_file = path.endswith(".jsonl")
        if not self._single_file and os.path.isfile(path):
            raise HistoryError(
                f"{path!r} is a file but not *.jsonl; pass a directory "
                "or a .jsonl file")
        #: unreadable/foreign lines skipped by the last :meth:`records`
        self.corrupt_lines = 0

    # -- writing -------------------------------------------------------------

    def file_for(self, kind: str) -> str:
        """The JSONL file records of ``kind`` land in."""
        if self._single_file:
            return self.path
        safe = _KIND_RE.sub("_", kind) or "unknown"
        return os.path.join(self.path, f"{safe}.jsonl")

    def append(self, record: Dict) -> str:
        """Append one record; returns its ``record_id``.

        The line is written with a single ``os.write`` on an
        ``O_APPEND`` descriptor, so concurrent appenders (two CI shards,
        a bench and a convert racing) interleave whole records.
        """
        if "record_id" not in record:
            record = dict(record, record_id=record_id_of(record))
        target = self.file_for(str(record.get("kind", "unknown")))
        directory = os.path.dirname(os.path.abspath(target))
        os.makedirs(directory, exist_ok=True)
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        fd = os.open(target, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        return record["record_id"]

    # -- reading -------------------------------------------------------------

    def _files(self) -> List[str]:
        if self._single_file:
            return [self.path] if os.path.isfile(self.path) else []
        try:
            names = sorted(os.listdir(self.path))
        except OSError:
            return []
        return [os.path.join(self.path, name) for name in names
                if name.endswith(".jsonl")]

    def records(self, kind: Optional[str] = None,
                host: Optional[str] = None) -> List[Dict]:
        """Every readable record, oldest first, deduplicated by id.

        ``kind`` / ``host`` filter; unreadable lines are counted in
        :attr:`corrupt_lines` (reset per call) and skipped.
        """
        self.corrupt_lines = 0
        seen = set()
        out: List[Dict] = []
        for path in self._files():
            try:
                with open(path, encoding="utf-8") as handle:
                    lines = handle.readlines()
            except OSError:
                continue
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    self.corrupt_lines += 1
                    continue
                if (not isinstance(record, dict)
                        or not isinstance(record.get("rows"), dict)
                        or "kind" not in record):
                    self.corrupt_lines += 1
                    continue
                if kind is not None and record["kind"] != kind:
                    continue
                if host is not None and record.get("host") != host:
                    continue
                rid = record.get("record_id") or record_id_of(record)
                if rid in seen:
                    continue
                seen.add(rid)
                out.append(record)
        out.sort(key=lambda r: (r.get("timestamp", 0.0),
                                r.get("record_id", "")))
        return out

    def kinds(self) -> List[str]:
        """Every record kind present in the store, sorted."""
        return sorted({record["kind"] for record in self.records()})

    def tail(self, kind: Optional[str] = None, count: int = 20,
             host: Optional[str] = None) -> List[Dict]:
        """The newest ``count`` records (optionally of one kind/host)."""
        records = self.records(kind=kind, host=host)
        return records[-count:] if count else records

    def __len__(self) -> int:
        return len(self.records())

    def __repr__(self) -> str:
        shape = "file" if self._single_file else "dir"
        return f"HistoryStore({self.path!r}, {shape})"


def append_payload(store_path: str, data, source: str = "",
                   **provenance) -> str:
    """Convenience: open a store, append one payload, return its id."""
    store = HistoryStore(store_path)
    return store.append(record_from_payload(data, source=source,
                                            **provenance))


def iter_row_metrics(records: Iterable[Dict]):
    """Yield ``(kind, row, metric, record, value)`` for every numeric
    cell of every record — the flattening :mod:`repro.obs.trends`
    builds its series from."""
    for record in records:
        kind = record.get("kind", "unknown")
        for row, cells in record.get("rows", {}).items():
            for metric, value in cells.items():
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    yield kind, row, metric, record, value
