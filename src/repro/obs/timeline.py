"""Chrome trace-event export: open a DTT run in Perfetto.

Converts the :class:`~repro.core.trace.EngineTrace` event list into the
Chrome trace-event JSON format (the ``chrome://tracing`` / Perfetto
"JSON object" flavor).  Each support thread becomes a track; dispatched
activations pair with their completion (or cancellation) into duration
slices, and everything else — triggering stores, filter suppressions,
consume points — renders as instant events, so the interleaving the
trace records becomes visually inspectable.

Pairing is **identity-based**: a slice opens at the ``dispatched`` event
of an activation id and closes at the ``completed``/``canceled`` event
stamped with the *same* id, so interleaved activations on one track can
never steal each other's closers.  A closer whose id has no open slice
(a trace attached mid-run, or a truncated buffer that dropped the
dispatch) is counted in ``unmatched_closers`` and rendered as an
instant instead of silently misattributed.  Each trigger links to its
activation slice with a Chrome **flow event** pair (``ph: s`` at the
``fired`` instant, ``ph: f`` at the slice start), which Perfetto draws
as an arrow.

The engine has no wall clock: event *sequence numbers* serve as
timestamps (one tick per event, reported as microseconds, which Perfetto
renders fine).  What matters in a DTT timeline is ordering, not
duration.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import trace as T
from repro.core.trace import EngineTrace
from repro.obs.ioutil import atomic_write_text

#: event kinds that open a duration slice (paired with the kinds below)
_SLICE_OPENERS = (T.DISPATCHED,)
_SLICE_CLOSERS = (T.COMPLETED, T.CANCELED)


def _thread_track(thread: Optional[str], tids: Dict[str, int]) -> int:
    name = thread if thread is not None else "engine"
    if name not in tids:
        tids[name] = len(tids)
    return tids[name]


def trace_to_chrome(trace: EngineTrace, pid: int = 1,
                    process_name: str = "dtt-engine") -> Dict:
    """One trace as a Chrome trace-event JSON object (a plain dict).

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}``; pass it
    to :func:`write_chrome_trace` or ``json.dump`` it yourself.
    """
    return traces_to_chrome([(process_name, trace)], first_pid=pid)


def traces_to_chrome(named_traces: Sequence[Tuple[str, EngineTrace]],
                     first_pid: int = 1) -> Dict:
    """Several traces combined, one Perfetto process per trace.

    Each trace is consumed in a single pass over ``.events``, so a
    compressed :class:`~repro.obs.ctrace.CTraceStream` works in place of
    a live :class:`~repro.core.trace.EngineTrace` without materializing
    the event list.

    The returned dict carries an ``otherData.unmatched_closers`` count —
    completion/cancellation events whose activation had no open slice
    (Perfetto ignores the key; the manifest layer surfaces it).
    """
    events: List[Dict] = []
    unmatched = 0
    for offset, (process_name, trace) in enumerate(named_traces):
        pid = first_pid + offset
        process_events, process_unmatched = _one_process(
            trace, pid, process_name)
        events.extend(process_events)
        unmatched += process_unmatched
    events.sort(key=lambda e: (e["ts"], e.get("pid", 0), e.get("tid", 0)))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"unmatched_closers": unmatched},
    }


def unmatched_closer_count(trace: EngineTrace) -> int:
    """Closers (completed/canceled) with no identity-matched open slice."""
    open_ids = set()
    unmatched = 0
    for event in trace.events:
        if event.kind in _SLICE_OPENERS:
            if event.activation_id is not None:
                open_ids.add(event.activation_id)
        elif event.kind in _SLICE_CLOSERS:
            if event.activation_id in open_ids:
                open_ids.discard(event.activation_id)
            else:
                unmatched += 1
    return unmatched


def _flow_id(pid: int, activation_id: int) -> int:
    # flow ids are global in the Chrome format; offset by process so two
    # traces' activation #1 never join into one arrow
    return pid * 1_000_000 + activation_id


def _one_process(trace: EngineTrace, pid: int,
                 process_name: str) -> Tuple[List[Dict], int]:
    events: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0, "ts": 0,
        "args": {"name": process_name},
    }]
    tids: Dict[str, int] = {}
    # activation_id -> (start_ts, tid, detail) for open dispatch slices
    open_slices: Dict[int, Tuple[int, int, str]] = {}
    # legacy stack for id-less events (hand-built traces)
    anon_stack: Dict[int, List[Tuple[int, str]]] = {}
    # activation_id -> (fired_ts, fired_tid), for flow arrows
    fired_at: Dict[int, Tuple[int, int]] = {}
    unmatched = 0

    def close_slice(start: int, slice_tid: int, detail: str, end_ts: int,
                    thread: Optional[str], outcome: Optional[str],
                    activation_id: Optional[int]) -> None:
        args: Dict[str, object] = {}
        if outcome is not None:
            args["outcome"] = outcome
        if detail:
            args["detail"] = detail
        if activation_id is not None:
            args["activation_id"] = activation_id
        name = (f"{thread} activation" if outcome is not None
                else "activation (unfinished)")
        events.append({
            "name": name, "cat": "activation",
            "ph": "X", "ts": start, "dur": max(end_ts - start, 1),
            "pid": pid, "tid": slice_tid, "args": args,
        })
        if activation_id is not None and activation_id in fired_at:
            flow_ts, flow_tid = fired_at[activation_id]
            flow = _flow_id(pid, activation_id)
            events.append({
                "name": "trigger", "cat": "flow", "ph": "s", "id": flow,
                "ts": flow_ts, "pid": pid, "tid": flow_tid,
            })
            events.append({
                "name": "trigger", "cat": "flow", "ph": "f", "bp": "e",
                "id": flow, "ts": start, "pid": pid, "tid": slice_tid,
            })

    last_ts = 0
    for event in trace.events:
        tid = _thread_track(event.thread, tids)
        ts = last_ts = event.sequence
        args: Dict[str, object] = {}
        if event.address is not None:
            args["address"] = event.address
        if event.pc is not None:
            args["pc"] = event.pc
        if event.activation_id is not None:
            args["activation_id"] = event.activation_id
        if event.cause_id is not None:
            args["cause_id"] = event.cause_id
        if event.detail:
            args["detail"] = event.detail
        if event.kind == T.FIRED and event.activation_id is not None:
            fired_at[event.activation_id] = (ts, tid)
        if event.kind in _SLICE_OPENERS:
            if event.activation_id is not None:
                open_slices[event.activation_id] = (ts, tid, event.detail)
            else:
                anon_stack.setdefault(tid, []).append((ts, event.detail))
            continue
        if event.kind in _SLICE_CLOSERS:
            if event.activation_id in open_slices:
                start, slice_tid, detail = open_slices.pop(
                    event.activation_id)
                close_slice(start, slice_tid, detail, ts, event.thread,
                            event.kind, event.activation_id)
                continue
            if event.activation_id is None and anon_stack.get(tid):
                start, detail = anon_stack[tid].pop()
                close_slice(start, tid, detail, ts, event.thread,
                            event.kind, None)
                continue
            # closer with no matching open slice: count it, keep it
            # visible as an instant rather than misattributing a slice
            unmatched += 1
            args["unmatched"] = True
        events.append({
            "name": event.kind, "cat": "engine", "ph": "i", "s": "t",
            "ts": ts, "pid": pid, "tid": tid, "args": args,
        })
    # dangling slices (e.g. still executing at trace end) close at the
    # last seen timestamp so the export never loses a dispatch
    for activation_id, (start, slice_tid, detail) in open_slices.items():
        close_slice(start, slice_tid, detail, last_ts, None, None,
                    activation_id)
    for tid, stack in anon_stack.items():
        for start, detail in stack:
            close_slice(start, tid, detail, last_ts, None, None, None)
    for name, tid in tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "ts": 0, "args": {"name": name},
        })
    return events, unmatched


def write_chrome_trace(path: str, *named_traces: Tuple[str, EngineTrace]) -> None:
    """Write one or more named traces to ``path`` as Chrome trace JSON.

    UTF-8, atomic (temp file + ``os.replace``), matching the result
    store's write convention.
    """
    payload = traces_to_chrome(list(named_traces))
    atomic_write_text(path, json.dumps(payload, indent=1))
