"""Chrome trace-event export: open a DTT run in Perfetto.

Converts the :class:`~repro.core.trace.EngineTrace` event list into the
Chrome trace-event JSON format (the ``chrome://tracing`` / Perfetto
"JSON object" flavor).  Each support thread becomes a track; dispatched
activations pair with their completion (or cancellation) into duration
slices, and everything else — triggering stores, filter suppressions,
consume points — renders as instant events, so the interleaving the
trace records becomes visually inspectable.

The engine has no wall clock: event *sequence numbers* serve as
timestamps (one tick per event, reported as microseconds, which Perfetto
renders fine).  What matters in a DTT timeline is ordering, not
duration.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import trace as T
from repro.core.trace import EngineTrace

#: event kinds that open a duration slice (paired with the kinds below)
_SLICE_OPENERS = (T.DISPATCHED,)
_SLICE_CLOSERS = (T.COMPLETED, T.CANCELED)


def _thread_track(thread: Optional[str], tids: Dict[str, int]) -> int:
    name = thread if thread is not None else "engine"
    if name not in tids:
        tids[name] = len(tids)
    return tids[name]


def trace_to_chrome(trace: EngineTrace, pid: int = 1,
                    process_name: str = "dtt-engine") -> Dict:
    """One trace as a Chrome trace-event JSON object (a plain dict).

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}``; pass it
    to :func:`write_chrome_trace` or ``json.dump`` it yourself.
    """
    return traces_to_chrome([(process_name, trace)], first_pid=pid)


def traces_to_chrome(named_traces: Sequence[Tuple[str, EngineTrace]],
                     first_pid: int = 1) -> Dict:
    """Several traces combined, one Perfetto process per trace."""
    events: List[Dict] = []
    for offset, (process_name, trace) in enumerate(named_traces):
        pid = first_pid + offset
        events.extend(_one_process(trace, pid, process_name))
    events.sort(key=lambda e: (e["ts"], e.get("pid", 0), e.get("tid", 0)))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _one_process(trace: EngineTrace, pid: int, process_name: str) -> List[Dict]:
    events: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0, "ts": 0,
        "args": {"name": process_name},
    }]
    tids: Dict[str, int] = {}
    # per-thread stack of (start_ts, detail) for open dispatch slices
    open_slices: Dict[int, List[Tuple[int, str]]] = {}
    for event in trace.events:
        tid = _thread_track(event.thread, tids)
        ts = event.sequence
        args: Dict[str, object] = {}
        if event.address is not None:
            args["address"] = event.address
        if event.detail:
            args["detail"] = event.detail
        if event.kind in _SLICE_OPENERS:
            open_slices.setdefault(tid, []).append((ts, event.detail))
            continue
        if event.kind in _SLICE_CLOSERS and open_slices.get(tid):
            start, detail = open_slices[tid].pop()
            args["outcome"] = event.kind
            if detail:
                args.setdefault("detail", detail)
            events.append({
                "name": f"{event.thread} activation", "cat": "activation",
                "ph": "X", "ts": start, "dur": max(ts - start, 1),
                "pid": pid, "tid": tid, "args": args,
            })
            continue
        events.append({
            "name": event.kind, "cat": "engine", "ph": "i", "s": "t",
            "ts": ts, "pid": pid, "tid": tid, "args": args,
        })
    # dangling slices (e.g. still executing at trace end) close at the
    # last recorded timestamp so the export never loses a dispatch
    last_ts = trace.events[-1].sequence if trace.events else 0
    for tid, stack in open_slices.items():
        for start, detail in stack:
            events.append({
                "name": "activation (unfinished)", "cat": "activation",
                "ph": "X", "ts": start, "dur": max(last_ts - start, 1),
                "pid": pid, "tid": tid,
                "args": {"detail": detail} if detail else {},
            })
    for name, tid in tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "ts": 0, "args": {"name": name},
        })
    return events


def write_chrome_trace(path: str, *named_traces: Tuple[str, EngineTrace]) -> None:
    """Write one or more named traces to ``path`` as Chrome trace JSON."""
    payload = traces_to_chrome(list(named_traces))
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
