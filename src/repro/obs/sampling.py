"""Seeded samplers and confidence intervals for bounded-memory profiling.

Full-fidelity profiling caps workload scale: the redundancy profiler
tracks a last-loaded value per *location*, so its memory footprint (and
its per-event cost) grows with the run.  This module supplies the three
statistical primitives that let the observability tier trade exactness
for a fixed budget — following "Redundant Loads: A Software Inefficiency
Indicator" (PAPERS.md), which showed sampling-based redundancy profiling
of production software loses little precision:

* :class:`AddressSampler` — a seeded hash over *addresses*: a fixed
  ``1/k`` subset of locations is tracked exactly, every other location
  costs nothing.  Because the subset is chosen by a mixing hash (not by
  address arithmetic), strided access patterns cannot alias with the
  sample, and the same ``(seed, rate)`` selects the same subset in every
  process — pool workers agree with the parent byte-for-byte.
* :class:`StridedSampler` — every ``k``-th event with a seeded phase,
  for streams with no usable key (e.g. instruction events).
* :class:`ReservoirSampler` — a uniform fixed-capacity sample of an
  unbounded stream (Vitter's Algorithm R), seeded and deterministic.

Estimates are reported as :class:`SampleEstimate` values carrying a 95 %
(by default) confidence interval.  The Wilson score interval is used
when trial counts are small or the proportion is extreme (it never
escapes [0, 1]); :func:`normal_interval` is the classic Wald interval
for large samples.  Downstream, ``compare`` treats a metric's CI width
as its tolerance: an estimate is only a regression when it moved by more
than its own uncertainty.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Optional, Tuple

#: z-score of the two-sided 95 % confidence level
Z_95 = 1.959963984540054

#: 64-bit mask for the splitmix64-style address hash
_MASK = (1 << 64) - 1


def _mix64(value: int) -> int:
    """splitmix64 finalizer: avalanche a 64-bit integer."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK
    return (value ^ (value >> 31)) & _MASK


def _wilson_bounds(p: float, trials: float,
                   z: float = Z_95) -> Tuple[float, float]:
    """Wilson score bounds at proportion ``p`` with (possibly fractional)
    effective trial count ``trials`` — the shared kernel of
    :func:`wilson_interval` and :func:`cluster_coverage_interval`."""
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2.0 * trials)) / denom
    margin = (z * math.sqrt(p * (1.0 - p) / trials
                            + z2 / (4.0 * trials * trials))) / denom
    return (max(0.0, center - margin), min(1.0, center + margin))


def wilson_interval(successes: int, trials: int,
                    z: float = Z_95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Bounded to [0, 1] by construction and well-behaved at 0 and 1 —
    unlike the normal approximation, a site whose every sampled load was
    redundant still gets a non-degenerate interval.  ``(0.0, 1.0)`` when
    ``trials`` is zero (no information).
    """
    if trials <= 0:
        return (0.0, 1.0)
    return _wilson_bounds(successes / trials, trials, z)


def kish_effective_size(cluster_sizes: Iterable[int]) -> float:
    """Kish effective sample size ``(Σn)² / Σn²`` of a cluster sample.

    Equal-size clusters give back the cluster count; one dominant
    cluster collapses toward 1 — capturing that 200 sampled events on a
    single address carry roughly one address worth of information about
    a per-address property.
    """
    total = total_sq = 0
    for n in cluster_sizes:
        total += n
        total_sq += n * n
    return (total * total) / total_sq if total_sq else 0.0


def cluster_coverage_interval(successes: int, trials: int, effective: float,
                              population: int, rate: int,
                              z: float = Z_95) -> Tuple[float, float]:
    """Confidence interval for a proportion under 1-in-``rate`` *cluster*
    sampling (the sampled redundancy profiler's design, where the cluster
    is the address).

    A plain binomial interval over sampled events is wrong here twice
    over.  First, events of one address are not independent trials —
    redundancy is a property of the address's reuse pattern, so the
    effective sample size is the :func:`kish_effective_size` of the
    sampled addresses (``effective``), not the number of sampled events
    (``trials``).  Second, dynamic events concentrate on few hot
    addresses: when the hash sample happens to miss them, the sampled
    events say nothing about most of the population.  The
    Horvitz-Thompson scale-up ``rate * trials`` estimates how many of
    the ``population`` events the sampled addresses represent; the
    remainder is *uncovered* mass whose proportion is unknown, so it
    contributes its full [0, 1] range:

    ``covered = min(1, rate * trials / population)``
    ``interval = (covered * lo, covered * hi + (1 - covered))``

    where ``(lo, hi)`` is the Wilson interval at the pooled sampled
    proportion with ``effective`` trials.  With homogeneous,
    well-covered populations this degrades gracefully to the ordinary
    Wilson interval; with a missed (or over-weighted) hot cluster it
    honestly widens toward "no information" instead of being
    confidently wrong.
    """
    if trials <= 0 or population <= 0:
        return (0.0, 1.0)
    effective = max(1.0, min(float(effective), float(trials)))
    lo, hi = _wilson_bounds(successes / trials, effective, z)
    covered = min(1.0, (rate * trials) / population)
    return (covered * lo, covered * hi + (1.0 - covered))


def normal_interval(successes: int, trials: int,
                    z: float = Z_95) -> Tuple[float, float]:
    """Normal-approximation (Wald) interval, clamped to [0, 1].

    Appropriate for large samples away from the boundaries; the sampled
    profiler uses Wilson everywhere, this exists for the large-n
    consumers (and the docs' CI math section) that want the textbook
    formula.
    """
    if trials <= 0:
        return (0.0, 1.0)
    p = successes / trials
    margin = z * math.sqrt(p * (1.0 - p) / trials)
    return (max(0.0, p - margin), min(1.0, p + margin))


class SampleEstimate:
    """A sampled proportion with its confidence interval.

    ``fraction`` is the point estimate (successes/trials over the
    *sampled* population); ``ci_low``/``ci_high`` bound it at the
    confidence level the profiler was built with; ``ci_width`` is the
    tolerance ``compare`` grants the metric.
    """

    __slots__ = ("successes", "trials", "fraction", "ci_low", "ci_high")

    def __init__(self, successes: int, trials: int, z: float = Z_95):
        self.successes = successes
        self.trials = trials
        self.fraction = successes / trials if trials else 0.0
        self.ci_low, self.ci_high = wilson_interval(successes, trials, z)

    @classmethod
    def from_interval(cls, successes: int, trials: int, fraction: float,
                      ci_low: float, ci_high: float) -> "SampleEstimate":
        """An estimate whose bounds were computed by a non-binomial
        procedure (e.g. :func:`cluster_coverage_interval`); the point
        estimate must already lie inside the bounds."""
        estimate = object.__new__(cls)
        estimate.successes = successes
        estimate.trials = trials
        estimate.fraction = fraction
        estimate.ci_low = ci_low
        estimate.ci_high = ci_high
        return estimate

    @property
    def ci_width(self) -> float:
        return self.ci_high - self.ci_low

    def contains(self, value: float) -> bool:
        """Is ``value`` inside this estimate's confidence interval?"""
        return self.ci_low <= value <= self.ci_high

    def __repr__(self) -> str:
        return (f"SampleEstimate({self.fraction:.3f} "
                f"[{self.ci_low:.3f}, {self.ci_high:.3f}], "
                f"n={self.trials})")


class AddressSampler:
    """Seeded hash-based membership test over addresses.

    An address is *sampled* when its mixed hash lands in the first
    ``1/rate`` slice of the hash space, so approximately one location in
    ``rate`` is tracked, the choice is uniform over addresses regardless
    of their arithmetic structure, and membership is a pure function of
    ``(seed, rate, address)`` — stable across processes and runs.
    ``rate=1`` samples everything (full fidelity).
    """

    __slots__ = ("rate", "seed", "_threshold", "_seed_mix")

    def __init__(self, rate: int, seed: int = 0):
        if rate < 1:
            raise ValueError(f"sample rate denominator must be >= 1, "
                             f"got {rate}")
        self.rate = rate
        self.seed = seed
        self._threshold = _MASK // rate
        self._seed_mix = _mix64((seed & _MASK) ^ 0x9E3779B97F4A7C15)

    def sampled(self, address: int) -> bool:
        """Is ``address`` in the tracked subset?"""
        if self.rate == 1:
            return True
        return _mix64((address & _MASK) ^ self._seed_mix) <= self._threshold

    def __repr__(self) -> str:
        return f"AddressSampler(1/{self.rate}, seed={self.seed})"


class StridedSampler:
    """Every ``stride``-th event, starting at a seeded phase.

    For event streams with no stable key to hash: the phase is drawn
    uniformly from ``[0, stride)`` by a private seeded PRNG, so repeated
    runs with one seed pick the same events while different seeds
    decorrelate the stride from any periodicity in the stream.
    """

    __slots__ = ("stride", "seed", "_next", "observed", "taken")

    def __init__(self, stride: int, seed: int = 0):
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.stride = stride
        self.seed = seed
        self._next = random.Random(seed).randrange(stride)
        self.observed = 0
        self.taken = 0

    def sample(self) -> bool:
        """Advance one event; True when this event is in the sample."""
        index = self.observed
        self.observed += 1
        if index == self._next:
            self._next += self.stride
            self.taken += 1
            return True
        return False

    def __repr__(self) -> str:
        return (f"StridedSampler(1/{self.stride}, seed={self.seed}, "
                f"{self.taken}/{self.observed})")


class ReservoirSampler:
    """Uniform fixed-capacity sample of an unbounded stream (Algorithm R).

    After ``offer``-ing ``n`` items, each of the ``min(n, capacity)``
    retained items was kept with probability ``capacity/n`` — a uniform
    sample using O(capacity) memory no matter how long the stream runs.
    Seeded: one seed, one sample, in any process.
    """

    __slots__ = ("capacity", "seed", "items", "observed", "_rng")

    def __init__(self, capacity: int, seed: int = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.seed = seed
        self.items: List = []
        self.observed = 0
        self._rng = random.Random(seed)

    def offer(self, item) -> bool:
        """Present one stream item; True when it entered the reservoir."""
        self.observed += 1
        if len(self.items) < self.capacity:
            self.items.append(item)
            return True
        slot = self._rng.randrange(self.observed)
        if slot < self.capacity:
            self.items[slot] = item
            return True
        return False

    def extend(self, items: Iterable) -> None:
        """Offer every item of ``items``."""
        for item in items:
            self.offer(item)

    def __repr__(self) -> str:
        return (f"ReservoirSampler({len(self.items)}/{self.capacity} held, "
                f"{self.observed} observed, seed={self.seed})")
