"""The metrics registry: named counters, gauges, and histograms.

Modeled on the Prometheus client-library data model, reduced to what a
single-process simulator needs: instruments are plain Python objects with
one hot method each (``inc`` / ``set`` / ``observe``), registered by name
in a :class:`MetricsRegistry`.  A registry can be snapshotted at any
point; two snapshots diff into per-instrument deltas, which is how tests
and the overhead benchmarks assert "this run incremented exactly these
counters".  Exporters render the whole registry as Prometheus text
exposition format or JSON — both dependency-free.

Conventions:

* instrument names are dotted (``engine.triggers_fired``); the
  Prometheus exporter rewrites dots to underscores;
* counters are monotonic — a negative increment raises
  :class:`~repro.errors.MetricsError`;
* histograms have fixed upper-bound buckets chosen at registration, plus
  an implicit ``+Inf`` overflow bucket;
* instruments may carry a small fixed **label set** (Prometheus-style
  ``name{key="value"}``): each distinct label combination is its own
  instrument, registered under the canonical labeled key, so e.g. the
  trace drop counter distinguishes ``keep="head"`` from ``keep="tail"``
  windows in every export.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import MetricsError

Number = Union[int, float]

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_.]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def labeled_key(name: str, labels: Optional[Dict[str, str]]) -> str:
    """The canonical registry key for ``name`` with ``labels``.

    Label keys are sorted so ``{a=1, b=2}`` and ``{b=2, a=1}`` resolve
    to one instrument; the rendered form matches the Prometheus
    exposition syntax (``name{a="1",b="2"}``).
    """
    if not labels:
        return name
    parts = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise MetricsError(
                f"invalid label name {key!r} on metric {name!r} (want "
                "letters, digits, underscores; must not start with a digit)")
        parts.append(f'{key}="{_escape_label_value(str(labels[key]))}"')
    return name + "{" + ",".join(parts) + "}"

#: default histogram buckets: powers of two, sized for cycle counts
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
                                      1024, 4096, 16384, 65536)


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "help", "value", "labels")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0
        self.labels: Optional[Dict[str, str]] = None

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise MetricsError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A value that can go up and down (queue depth, cycle totals)."""

    __slots__ = ("name", "help", "value", "labels")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0
        self.labels: Optional[Dict[str, str]] = None

    def set(self, value: Number) -> None:
        """Set the gauge to ``value``."""
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` to the gauge."""
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        """Subtract ``amount`` from the gauge."""
        self.value -= amount

    def set_max(self, value: Number) -> None:
        """Raise the gauge to ``value`` if it is higher (high-water mark)."""
        if value > self.value:
            self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """A fixed-bucket histogram of observed values.

    Buckets are upper bounds (inclusive), strictly increasing; one
    implicit ``+Inf`` overflow bucket catches everything larger.  Per
    Prometheus convention the exporter renders *cumulative* bucket
    counts, but :attr:`counts` stores per-bucket (non-cumulative) counts
    because those are what tests assert against.
    """

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count",
                 "labels")

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[Number] = DEFAULT_BUCKETS):
        if not buckets:
            raise MetricsError(f"histogram {self.__class__.__name__} "
                               f"{name!r} needs at least one bucket")
        bounds = [float(b) for b in buckets]
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise MetricsError(
                f"histogram {name!r} buckets must be strictly increasing, "
                f"got {list(buckets)}"
            )
        if any(math.isinf(b) for b in bounds):
            raise MetricsError(
                f"histogram {name!r}: the +Inf bucket is implicit; do not "
                "pass it explicitly"
            )
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(bounds)
        #: per-bucket counts; index len(buckets) is the +Inf overflow
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: Number = 0
        self.count = 0
        self.labels: Optional[Dict[str, str]] = None

    def observe(self, value: Number) -> None:
        """Record one observation."""
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Cumulative counts per bucket, Prometheus-style (ends at count)."""
        out = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"sum={self.sum})")


def _escape_help(text: str) -> str:
    """Escape a HELP line per the Prometheus exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    """Escape a label value per the Prometheus exposition format."""
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


Instrument = Union[Counter, Gauge, Histogram]

_TYPE_NAMES = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


class MetricsSnapshot:
    """A frozen copy of a registry's values at one point in time."""

    def __init__(self, values: Dict[str, Dict]):
        self._values = values

    def as_dict(self) -> Dict[str, Dict]:
        """The snapshot as plain nested dicts (JSON-ready)."""
        return {name: dict(entry) for name, entry in self._values.items()}

    def __getitem__(self, name: str) -> Dict:
        return self._values[name]

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def diff(self, older: "MetricsSnapshot") -> Dict[str, Number]:
        """Numeric change per instrument since ``older``.

        Counters and histogram counts diff as deltas; gauges report
        their current value (a gauge has no meaningful delta).
        Instruments absent from ``older`` diff against zero.
        """
        deltas: Dict[str, Number] = {}
        for name, entry in self._values.items():
            kind = entry["type"]
            if kind == "gauge":
                deltas[name] = entry["value"]
                continue
            if kind == "counter":
                before = older[name]["value"] if name in older else 0
                deltas[name] = entry["value"] - before
            else:  # histogram: diff the observation count
                before = older[name]["count"] if name in older else 0
                deltas[name] = entry["count"] - before
        return deltas

    def __repr__(self) -> str:
        return f"MetricsSnapshot({len(self._values)} instruments)"


class MetricsRegistry:
    """Named instruments, registered once and shared by reference.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for
    an existing name returns the existing instrument (so instrumented
    components can be composed without coordination), but asking for an
    existing name *as a different type* is a hard error.
    """

    def __init__(self):
        self._instruments: "Dict[str, Instrument]" = {}

    # -- registration ---------------------------------------------------------

    def _get_or_create(self, cls, name: str, *args,
                       labels: Optional[Dict[str, str]] = None,
                       **kwargs) -> Instrument:
        key = labeled_key(name, labels)
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricsError(
                    f"{key!r} is already registered as a "
                    f"{_TYPE_NAMES[type(existing)]}, not a {_TYPE_NAMES[cls]}"
                )
            return existing
        if not _NAME_RE.match(name):
            raise MetricsError(
                f"invalid metric name {name!r} (want letters, digits, "
                "underscores, dots; must not start with a digit)"
            )
        instrument = cls(name, *args, **kwargs)
        if labels:
            instrument.labels = {str(k): str(v)
                                 for k, v in sorted(labels.items())}
        self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, help: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        """Get or create the counter called ``name`` (one instrument per
        distinct label set)."""
        return self._get_or_create(Counter, name, help, labels=labels)

    def gauge(self, name: str, help: str = "",
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get_or_create(Gauge, name, help, labels=labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[Number] = DEFAULT_BUCKETS,
                  labels: Optional[Dict[str, str]] = None) -> Histogram:
        """Get or create the histogram called ``name``."""
        return self._get_or_create(Histogram, name, help, buckets,
                                   labels=labels)

    # -- access --------------------------------------------------------------

    def get(self, name: str) -> Optional[Instrument]:
        """The instrument called ``name``, or None."""
        return self._instruments.get(name)

    def names(self) -> List[str]:
        """All registered names, in registration order."""
        return list(self._instruments)

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def reset(self) -> None:
        """Zero every instrument (registrations survive, values don't)."""
        for instrument in self._instruments.values():
            if isinstance(instrument, Histogram):
                instrument.counts = [0] * len(instrument.counts)
                instrument.sum = 0
                instrument.count = 0
            else:
                instrument.value = 0

    # -- merging --------------------------------------------------------------

    def merge_values(self, values: Dict[str, Dict]) -> None:
        """Fold another registry's snapshot values into this registry.

        This is how pool workers' metrics reach the parent process:
        counters add, gauges keep the maximum (they are high-water marks
        across workers), histograms add per-bucket counts — provided the
        bucket layouts agree, otherwise :class:`MetricsError`.  Entries
        are dicts as produced by :meth:`snapshot` / :meth:`as_dict`.
        """
        for name, entry in values.items():
            kind = entry.get("type")
            # labeled entries snapshot under their canonical key
            # (``name{k="v"}``); re-registering with the entry's label
            # dict reproduces the same key on this side
            base = name.split("{", 1)[0]
            labels = entry.get("labels")
            if kind == "counter":
                self.counter(base, labels=labels).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(base, labels=labels).set_max(entry["value"])
            elif kind == "histogram":
                histogram = self.histogram(base,
                                           buckets=entry["buckets"],
                                           labels=labels)
                if list(histogram.buckets) != [float(b) for b
                                               in entry["buckets"]]:
                    raise MetricsError(
                        f"cannot merge histogram {name!r}: bucket layout "
                        f"{entry['buckets']} differs from registered "
                        f"{list(histogram.buckets)}"
                    )
                for index, count in enumerate(entry["counts"]):
                    histogram.counts[index] += count
                histogram.sum += entry["sum"]
                histogram.count += entry["count"]
            else:
                raise MetricsError(
                    f"cannot merge {name!r}: unknown instrument type "
                    f"{kind!r}"
                )

    # -- snapshot / export ----------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Freeze every instrument's current value."""
        values: Dict[str, Dict] = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Histogram):
                values[name] = {
                    "type": "histogram",
                    "buckets": list(instrument.buckets),
                    "counts": list(instrument.counts),
                    "sum": instrument.sum,
                    "count": instrument.count,
                }
            else:
                values[name] = {
                    "type": _TYPE_NAMES[type(instrument)],
                    "value": instrument.value,
                }
            if instrument.labels:
                values[name]["labels"] = dict(instrument.labels)
        return MetricsSnapshot(values)

    def as_dict(self) -> Dict[str, Dict]:
        """The registry's current values as plain dicts (JSON-ready)."""
        return self.snapshot().as_dict()

    def to_json(self, indent: int = 2) -> str:
        """The registry's current values as a JSON string."""
        return json.dumps(self.as_dict(), indent=indent)

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        HELP text and label values are escaped per the exposition-format
        rules (backslash and newline in both; double quote additionally
        in label values), so free-text help strings can never corrupt
        the line protocol.
        """
        lines: List[str] = []
        typed = set()  # HELP/TYPE emitted once per base name, not per
        # label combination (the exposition format forbids repeats)
        for instrument in self._instruments.values():
            flat = instrument.name.replace(".", "_")
            if flat not in typed:
                typed.add(flat)
                if instrument.help:
                    lines.append(f"# HELP {flat} "
                                 f"{_escape_help(instrument.help)}")
                lines.append(
                    f"# TYPE {flat} {_TYPE_NAMES[type(instrument)]}")
            pairs = [f'{k}="{_escape_label_value(v)}"'
                     for k, v in (instrument.labels or {}).items()]
            suffix = "{" + ",".join(pairs) + "}" if pairs else ""
            if isinstance(instrument, Histogram):
                cumulative = instrument.cumulative_counts()
                for bound, count in zip(instrument.buckets, cumulative):
                    le = _escape_label_value(format(bound, "g"))
                    le_pairs = pairs + [f'le="{le}"']
                    lines.append(
                        f'{flat}_bucket{{{",".join(le_pairs)}}} {count}')
                inf_pairs = pairs + ['le="+Inf"']
                lines.append(f'{flat}_bucket{{{",".join(inf_pairs)}}} '
                             f'{instrument.count}')
                lines.append(f"{flat}_sum{suffix} {instrument.sum}")
                lines.append(f"{flat}_count{suffix} {instrument.count}")
            else:
                lines.append(f"{flat}{suffix} {instrument.value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render(self) -> str:
        """Aligned human-readable snapshot (the ``stats`` CLI output)."""
        rows: List[Tuple[str, str]] = []
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Histogram):
                mean = instrument.sum / instrument.count if instrument.count \
                    else 0.0
                rows.append((name, f"count={instrument.count} "
                                   f"mean={mean:.2f}"))
            else:
                rows.append((name, format(instrument.value, "g")))
        if not rows:
            return "(no metrics recorded)"
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"
