"""Observability: metrics registry, run manifests, exportable timelines.

The paper's whole evaluation is counter-driven — redundant-load rates,
triggers fired/suppressed, clean vs. wait consumes — so instrumentation
is not an afterthought here; it is the measuring instrument.  This
package is the one place those measurements live:

* :mod:`repro.obs.metrics` — a dependency-free registry of named
  counters, gauges, and fixed-bucket histograms, with snapshot/diff and
  Prometheus-text / JSON exporters;
* :mod:`repro.obs.timeline` — converts an
  :class:`~repro.core.trace.EngineTrace` into Chrome trace-event JSON,
  so a DTT run can be opened in ``chrome://tracing`` or Perfetto;
* :mod:`repro.obs.manifest` — a per-run :class:`RunManifest` (config
  fingerprint, wall-clock per phase, cache hit/miss counts, peak queue
  depth) attached to every experiment result.

Everything here observes; nothing here decides.  Components accept an
optional :class:`MetricsRegistry` and run identically (and pay nothing)
without one.
"""

from repro.obs.manifest import RunManifest
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.timeline import trace_to_chrome, traces_to_chrome, write_chrome_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "RunManifest",
    "trace_to_chrome",
    "traces_to_chrome",
    "write_chrome_trace",
]
