"""Observability: metrics registry, run manifests, exportable timelines.

The paper's whole evaluation is counter-driven — redundant-load rates,
triggers fired/suppressed, clean vs. wait consumes — so instrumentation
is not an afterthought here; it is the measuring instrument.  This
package is the one place those measurements live:

* :mod:`repro.obs.metrics` — a dependency-free registry of named
  counters, gauges, and fixed-bucket histograms, with snapshot/diff and
  Prometheus-text / JSON exporters;
* :mod:`repro.obs.timeline` — converts an
  :class:`~repro.core.trace.EngineTrace` into Chrome trace-event JSON,
  so a DTT run can be opened in ``chrome://tracing`` or Perfetto;
* :mod:`repro.obs.manifest` — a per-run :class:`RunManifest` (config
  fingerprint, wall-clock per phase, cache hit/miss counts, peak queue
  depth) attached to every experiment result;
* :mod:`repro.obs.history` — the append-only, content-addressed
  :class:`HistoryStore` of per-run performance records (JSONL under
  ``benchmarks/history/``);
* :mod:`repro.obs.trends` — EWMA prediction intervals + changepoint
  flagging over a history store's series (``dtt-harness history``);
* :mod:`repro.obs.flame` — flamegraph-style cycle attribution joining
  timing totals with the causal trace's per-static-site costs;
* :mod:`repro.obs.status` — a throttled atomic-JSON heartbeat
  (:class:`StatusFile`) for live run telemetry (``--status-file``).

Everything here observes; nothing here decides.  Components accept an
optional :class:`MetricsRegistry` and run identically (and pay nothing)
without one.
"""

from repro.obs.flame import attribute_cycles, flame_svg, folded_stacks
from repro.obs.history import (
    HistoryStore,
    append_payload,
    host_fingerprint,
    make_record,
    record_from_payload,
)
from repro.obs.manifest import RunManifest
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.status import StatusFile, read_status
from repro.obs.timeline import trace_to_chrome, traces_to_chrome, write_chrome_trace
from repro.obs.trends import TrendReport, TrendVerdict, analyze_history

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistoryStore",
    "MetricsRegistry",
    "MetricsSnapshot",
    "RunManifest",
    "StatusFile",
    "TrendReport",
    "TrendVerdict",
    "analyze_history",
    "append_payload",
    "attribute_cycles",
    "flame_svg",
    "folded_stacks",
    "host_fingerprint",
    "make_record",
    "read_status",
    "record_from_payload",
    "trace_to_chrome",
    "traces_to_chrome",
    "write_chrome_trace",
]
