"""Trend analysis over the performance-history store.

``compare`` answers "is NEW worse than OLD?" for one pair of artifacts.
This module answers the longitudinal question over a
:class:`~repro.obs.history.HistoryStore` series: *is the latest run
worse than where this metric has been trending, and did the series shift
level somewhere in the window?*  Three ideas, all reused from elsewhere
in the tier so a metric means one thing everywhere:

* **Direction awareness** comes from :func:`repro.exec.compare.
  metric_direction` — ``speedup`` only regresses by falling, ``cycles``
  only by rising, fractions regress on drift either way, wall-clock
  never gates.
* **Noise tolerance** comes from the interval math in
  :mod:`repro.obs.sampling`: the expected value is an EWMA of the
  baseline runs and the acceptance band is a normal prediction interval
  (``Z_95 * sd * sqrt(1 + 1/n)``) floored at the relative ``tolerance``
  and widened by any ``<metric>_ci_width`` sibling the payload shipped —
  movement inside a sampled estimate's own confidence interval is noise
  by definition, exactly as in ``compare``.
* **Changepoint flagging** catches slow drift a last-vs-baseline test
  misses: every split of the window with at least two runs per side is
  scored with a pooled-error t statistic; a significant, beyond-
  tolerance level shift in the bad direction flags even when the latest
  run alone is within band.

A **minimum-run-count guard** (default 3) keeps one lucky rerun from
gating anything: short series get the non-gating ``insufficient-data``
verdict.  Every verdict code lives in :data:`VERDICTS` (wired into the
docs-sync test); only ``regression`` and ``changepoint`` gate CI, the
way ``compare`` regressions do today.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import HistoryError
from repro.obs.sampling import Z_95

#: exponential-weighting factor for the trend baseline: ~the last 6 runs
#: dominate, older history decays instead of being cliff-dropped
EWMA_ALPHA = 0.3

#: default relative tolerance floor (mirrors compare.DEFAULT_TOLERANCE)
DEFAULT_TOLERANCE = 0.05

#: fewest runs of a series before its verdicts may gate
DEFAULT_MIN_RUNS = 3

#: newest records per kind considered by default
DEFAULT_WINDOW = 20

#: every verdict the analyzer can emit.  ``regression`` and
#: ``changepoint`` gate (exit non-zero under ``history --gate``); the
#: rest are informational.  Documented in docs/architecture.md; the
#: docs-sync test asserts every code appears there.
VERDICTS = {
    "ok": "latest run inside the trend's prediction interval, no level "
          "shift detected anywhere in the window",
    "regression": "latest run outside the EWMA prediction interval in "
                  "the metric's bad direction (gates)",
    "improvement": "latest run outside the interval in the metric's "
                   "good direction — worth locking in, never gates",
    "changepoint": "a significant, beyond-tolerance level shift in the "
                   "bad direction between two segments of the window, "
                   "even if the latest run alone is in band (gates)",
    "insufficient-data": "fewer runs than the minimum-run-count guard; "
                         "nothing gates on a series this short",
    "info": "informational metric (wall clock, CI bounds) — tracked "
            "and plotted, never judged",
}

#: verdicts that fail the CI gate
GATING_VERDICTS = ("regression", "changepoint")


class TrendVerdict:
    """The analyzer's judgement of one ``(kind, row, metric)`` series."""

    __slots__ = ("kind", "row", "metric", "verdict", "direction", "values",
                 "timestamps", "git_shas", "ewma", "halfwidth", "latest",
                 "relative", "note", "changepoint_index")

    def __init__(self, kind: str, row: str, metric: str, verdict: str,
                 direction: str, values: List[float],
                 timestamps: List[float], git_shas: List[Optional[str]],
                 ewma: float, halfwidth: float, latest: float,
                 relative: float, note: str = "",
                 changepoint_index: Optional[int] = None):
        self.kind = kind
        self.row = row
        self.metric = metric
        self.verdict = verdict
        self.direction = direction
        self.values = values
        self.timestamps = timestamps
        self.git_shas = git_shas
        self.ewma = ewma
        self.halfwidth = halfwidth
        self.latest = latest
        self.relative = relative
        self.note = note
        self.changepoint_index = changepoint_index

    @property
    def gates(self) -> bool:
        return self.verdict in GATING_VERDICTS

    @property
    def series(self) -> str:
        return f"{self.kind} :: {self.row} :: {self.metric}"

    def as_dict(self) -> Dict:
        """JSON-ready dict (``history --json`` / dashboard data)."""
        return {
            "kind": self.kind,
            "row": self.row,
            "metric": self.metric,
            "verdict": self.verdict,
            "direction": self.direction,
            "runs": len(self.values),
            "values": self.values,
            "ewma": self.ewma,
            "halfwidth": self.halfwidth,
            "latest": self.latest,
            "relative_change": round(self.relative, 6),
            "gates": self.gates,
            "note": self.note,
            "changepoint_index": self.changepoint_index,
            "git_shas": self.git_shas,
        }


class TrendReport:
    """Every series verdict over one history window."""

    def __init__(self, source: str, window: int, tolerance: float,
                 min_runs: int):
        self.source = source
        self.window = window
        self.tolerance = tolerance
        self.min_runs = min_runs
        self.verdicts: List[TrendVerdict] = []
        self.record_count = 0
        self.corrupt_lines = 0

    @property
    def flagged(self) -> List[TrendVerdict]:
        return [v for v in self.verdicts if v.gates]

    @property
    def has_regressions(self) -> bool:
        return bool(self.flagged)

    def by_verdict(self, verdict: str) -> List[TrendVerdict]:
        """All series that received the given verdict code."""
        return [v for v in self.verdicts if v.verdict == verdict]

    def as_dict(self) -> Dict:
        """JSON-ready report: parameters, verdict counts, every series."""
        counts: Dict[str, int] = {}
        for v in self.verdicts:
            counts[v.verdict] = counts.get(v.verdict, 0) + 1
        return {
            "source": self.source,
            "window": self.window,
            "tolerance": self.tolerance,
            "min_runs": self.min_runs,
            "records": self.record_count,
            "corrupt_lines": self.corrupt_lines,
            "verdict_counts": counts,
            "series": [v.as_dict() for v in self.verdicts],
            "flagged": len(self.flagged),
        }

    def render(self, verbose: bool = False) -> str:
        """Human-readable report; quiet series are summarized unless
        ``verbose``."""
        lines = [f"trend history: {self.source}  "
                 f"[{self.record_count} record(s), window {self.window}, "
                 f"tolerance {self.tolerance:.1%}, min runs {self.min_runs}]"]
        if self.corrupt_lines:
            lines.append(f"  ({self.corrupt_lines} corrupt line(s) skipped)")
        shown = 0
        for v in self.verdicts:
            interesting = v.verdict in ("regression", "changepoint",
                                        "improvement")
            if not interesting and not verbose:
                continue
            shown += 1
            mark = v.verdict.upper() if v.gates else v.verdict
            movement = (f"{v.ewma:g} -> {v.latest:g} ({v.relative:+.1%})"
                        if v.ewma else f"latest {v.latest:g}")
            note = f"  [{v.note}]" if v.note else ""
            lines.append(f"  {mark:<12} {v.series}: {movement}{note}")
        quiet = len(self.verdicts) - shown
        if quiet:
            lines.append(f"  ({quiet} quiet series not shown; "
                         "--verbose lists all)")
        counts = ", ".join(
            f"{count} {verdict}" for verdict, count in sorted(
                self.as_dict()["verdict_counts"].items()))
        lines.append(f"{len(self.flagged)} gating verdict(s) "
                     f"[{counts or 'no series'}]")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# series math
# ---------------------------------------------------------------------------


def ewma(values: Sequence[float], alpha: float = EWMA_ALPHA) -> float:
    """Exponentially weighted mean, newest value weighted ``alpha``."""
    if not values:
        raise HistoryError("EWMA of an empty series")
    mean = values[0]
    for value in values[1:]:
        mean = alpha * value + (1.0 - alpha) * mean
    return mean


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _sd(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values)
                     / (len(values) - 1))


def _changepoint(values: Sequence[float], direction: str,
                 tolerance: float) -> Optional[int]:
    """Index of the most significant bad-direction level shift, if any.

    Scans every split leaving at least two runs per side; a split flags
    when the shift exceeds ``Z_95`` pooled standard errors *and* the
    relative shift exceeds ``tolerance`` *and* the shift direction is
    bad for the metric (drift metrics flag on either direction).
    Returns the index of the first run after the best shift.
    """
    best_index = None
    best_stat = 0.0
    for split in range(2, len(values) - 1):
        before, after = values[:split], values[split:]
        shift = _mean(after) - _mean(before)
        base = _mean(before)
        relative = abs(shift) / abs(base) if base else (
            0.0 if shift == 0 else float("inf"))
        if relative <= tolerance:
            continue
        bad = ((direction == "down_bad" and shift < 0)
               or (direction == "up_bad" and shift > 0)
               or direction == "drift")
        if not bad:
            continue
        pooled_var = (_sd(before) ** 2 / len(before)
                      + _sd(after) ** 2 / len(after))
        if pooled_var <= 0:
            # zero-noise segments: any beyond-tolerance shift is real
            stat = float("inf")
        else:
            stat = abs(shift) / math.sqrt(pooled_var)
        if stat > Z_95 and stat > best_stat:
            best_stat = stat
            best_index = split
    return best_index


def analyze_series(kind: str, row: str, metric: str,
                   values: Sequence[float],
                   timestamps: Sequence[float],
                   git_shas: Sequence[Optional[str]],
                   tolerance: float = DEFAULT_TOLERANCE,
                   min_runs: int = DEFAULT_MIN_RUNS,
                   ci_width: float = 0.0) -> TrendVerdict:
    """Judge one metric series (oldest first).  See the module docstring
    for the algorithm; ``ci_width`` is the widest ``<metric>_ci_width``
    sibling seen anywhere in the series."""
    from repro.exec.compare import metric_direction

    if not values:
        raise HistoryError(f"empty series for {kind}/{row}/{metric}")
    values = [float(v) for v in values]
    latest = values[-1]
    common = dict(kind=kind, row=row, metric=metric,
                  values=values, timestamps=list(timestamps),
                  git_shas=list(git_shas), latest=latest)

    direction = metric_direction(metric)
    if direction == "info":
        return TrendVerdict(verdict="info", direction=direction,
                            ewma=_mean(values), halfwidth=0.0,
                            relative=0.0,
                            note="informational metric, never judged",
                            **common)
    if len(values) < min_runs:
        return TrendVerdict(verdict="insufficient-data",
                            direction=direction,
                            ewma=_mean(values), halfwidth=0.0,
                            relative=0.0,
                            note=f"{len(values)} run(s) < min {min_runs}",
                            **common)

    baseline = values[:-1]
    expected = ewma(baseline)
    sd = _sd(baseline)
    n = len(baseline)
    # prediction interval for one new observation around the baseline
    # level; floored by the relative tolerance and any sampling CI so a
    # dead-flat series doesn't flag on measurement jitter
    halfwidth = Z_95 * sd * math.sqrt(1.0 + 1.0 / n)
    floor = tolerance * abs(expected)
    note = ""
    if ci_width > floor:
        floor = ci_width
        note = f"tolerance = CI width ({ci_width:g})"
    halfwidth = max(halfwidth, floor)
    relative = ((latest - expected) / abs(expected)) if expected else 0.0

    change_at = _changepoint(values, direction, tolerance)
    deviation = latest - expected
    if abs(deviation) > halfwidth:
        bad = ((direction == "down_bad" and deviation < 0)
               or (direction == "up_bad" and deviation > 0)
               or direction == "drift")
        verdict = "regression" if bad else "improvement"
        return TrendVerdict(verdict=verdict, direction=direction,
                            ewma=expected, halfwidth=halfwidth,
                            relative=relative, note=note,
                            changepoint_index=change_at, **common)
    if change_at is not None:
        shift_note = (f"level shift after run {change_at} of "
                      f"{len(values)}")
        return TrendVerdict(verdict="changepoint", direction=direction,
                            ewma=expected, halfwidth=halfwidth,
                            relative=relative,
                            note=f"{note}; {shift_note}" if note
                            else shift_note,
                            changepoint_index=change_at, **common)
    return TrendVerdict(verdict="ok", direction=direction, ewma=expected,
                        halfwidth=halfwidth, relative=relative, note=note,
                        **common)


# ---------------------------------------------------------------------------
# history -> series
# ---------------------------------------------------------------------------


def _series_of(records: Iterable[Dict]):
    """Group records into per-``(kind, row, metric)`` series dicts."""
    series: Dict[tuple, Dict] = {}
    for record in records:
        kind = record.get("kind", "unknown")
        timestamp = float(record.get("timestamp", 0.0))
        sha = record.get("git_sha")
        for row, cells in record.get("rows", {}).items():
            for metric, value in cells.items():
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool):
                    continue
                entry = series.setdefault((kind, row, metric), {
                    "values": [], "timestamps": [], "git_shas": [],
                    "ci_width": 0.0,
                })
                entry["values"].append(float(value))
                entry["timestamps"].append(timestamp)
                entry["git_shas"].append(sha)
                width = cells.get(f"{metric}_ci_width")
                if isinstance(width, (int, float)) \
                        and not isinstance(width, bool):
                    entry["ci_width"] = max(entry["ci_width"], float(width))
    return series


def analyze_history(store, window: int = DEFAULT_WINDOW,
                    tolerance: float = DEFAULT_TOLERANCE,
                    min_runs: int = DEFAULT_MIN_RUNS,
                    kind: Optional[str] = None,
                    host: Optional[str] = None) -> TrendReport:
    """Analyze every series in a :class:`~repro.obs.history.
    HistoryStore` (or a pre-loaded record list) and return a
    :class:`TrendReport`.  Only the newest ``window`` records per kind
    are considered."""
    if isinstance(store, (list, tuple)):
        records = list(store)
        source = f"<{len(records)} record(s)>"
        corrupt = 0
    else:
        records = store.records(kind=kind, host=host)
        source = store.path
        corrupt = store.corrupt_lines
    if kind is not None:
        records = [r for r in records if r.get("kind") == kind]
    if host is not None:
        records = [r for r in records if r.get("host") == host]
    if not records:
        raise HistoryError(
            f"history {source} holds no records"
            + (f" of kind {kind!r}" if kind else "")
            + " — run bench/convert/run with --history first")

    # window per kind, so a chatty manifest stream cannot age out a
    # sparser bench stream sharing the same file
    by_kind: Dict[str, List[Dict]] = {}
    for record in records:
        by_kind.setdefault(record.get("kind", "unknown"), []).append(record)
    windowed: List[Dict] = []
    for kind_records in by_kind.values():
        windowed.extend(kind_records[-window:] if window else kind_records)

    report = TrendReport(source, window, tolerance, min_runs)
    report.record_count = len(windowed)
    report.corrupt_lines = corrupt
    for (s_kind, row, metric), entry in sorted(_series_of(windowed).items()):
        if metric.endswith(("_ci_width", "_ci_low", "_ci_high")):
            continue  # consumed as their estimate's tolerance
        report.verdicts.append(analyze_series(
            s_kind, row, metric, entry["values"], entry["timestamps"],
            entry["git_shas"], tolerance=tolerance, min_runs=min_runs,
            ci_width=entry["ci_width"]))
    return report
