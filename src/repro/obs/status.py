"""Live run telemetry: an atomic JSON heartbeat for in-flight runs.

A full-suite traced run (or, per ROADMAP item 3, a future distributed
submission) can take minutes with no output between experiments.  A
:class:`StatusFile` makes the run observable *while it happens*: the
harness passes ``--status-file status.json`` and any other process —
``watch cat``, a dashboard, the coordinating service — reads a complete,
never-torn JSON snapshot of where the run is.

Integrity comes from :func:`repro.obs.ioutil.atomic_write_text`
(tmpfile + fsync + ``os.replace``): a reader sees either the previous
complete heartbeat or the next one, byte-for-byte, even mid-write, and
concurrent writers to one path degrade to last-writer-wins rather than
interleaved garbage.  Cost is bounded by ``min_interval`` write
throttling — phase transitions and completion always flush, per-run
ticks are coalesced — so the heartbeat never becomes the hot path.

Each heartbeat carries: pid, ``running``/``done``/``failed`` status, the
current phase (:meth:`~repro.harness.suite.ExperimentSpec.phase_name`
strings, the same names the manifest's ``phase_seconds`` uses), runs
completed / total, instructions retired, last and peak queue depth, and
an **ETA from EWMA throughput**: per-run seconds are exponentially
weighted (same ``alpha`` spirit as :mod:`repro.obs.trends` and the
result store's timing hints) and multiplied by the runs remaining, so
the estimate adapts as the suite moves from cheap kernels to traced
heavyweights.  :meth:`StatusFile.summary` condenses the final telemetry
for the v7 run manifest.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional

from repro.obs.ioutil import atomic_write_text

#: EWMA weight of the newest per-run duration for the ETA estimate
ETA_ALPHA = 0.4

#: default write throttle; ticks inside the window coalesce
DEFAULT_MIN_INTERVAL = 0.25


class StatusFile:
    """Throttled atomic JSON heartbeat for one run.

    Cheap to tick (a dict update unless the throttle window elapsed)
    and safe to share a path across retries: every write replaces the
    whole file.  A ``path`` of None/"" disables everything, so callers
    wire it unconditionally.
    """

    def __init__(self, path: Optional[str],
                 min_interval: float = DEFAULT_MIN_INTERVAL):
        self.path = path or None
        self.min_interval = max(0.0, min_interval)
        self.started = time.time()
        self._last_write = 0.0
        self._ewma_run_seconds: Optional[float] = None
        self._ewma_instr_per_sec: Optional[float] = None
        self.state: Dict = {
            "pid": os.getpid(),
            "status": "running",
            "phase": None,
            "runs_completed": 0,
            "runs_total": None,
            "instructions_retired": 0,
            "queue_depth": 0,
            "peak_queue_depth": 0,
            "eta_seconds": None,
            "throughput_instructions_per_sec": None,
        }
        if self.path:
            self._write(force=True)

    @property
    def enabled(self) -> bool:
        return self.path is not None

    # -- lifecycle -----------------------------------------------------------

    def set_total(self, runs_total: int) -> None:
        """Declare how many runs the plan holds (enables the ETA)."""
        self.state["runs_total"] = int(runs_total)
        self._write(force=True)

    def begin_phase(self, phase: str) -> None:
        """A new phase started; always flushed (phases are rare and the
        most useful thing a watcher can see)."""
        self.state["phase"] = phase
        self._write(force=True)

    def complete_run(self, phase: str, seconds: float,
                     instructions: int = 0, queue_depth: int = 0) -> None:
        """One run finished: fold its cost into the EWMA and tick."""
        self.state["phase"] = phase
        self.state["runs_completed"] += 1
        self.state["instructions_retired"] += int(instructions)
        self.state["queue_depth"] = int(queue_depth)
        self.state["peak_queue_depth"] = max(
            self.state["peak_queue_depth"], int(queue_depth))
        if seconds >= 0:
            previous = self._ewma_run_seconds
            self._ewma_run_seconds = (
                seconds if previous is None
                else ETA_ALPHA * seconds + (1.0 - ETA_ALPHA) * previous)
        if seconds > 0 and instructions > 0:
            rate = instructions / seconds
            previous = self._ewma_instr_per_sec
            self._ewma_instr_per_sec = (
                rate if previous is None
                else ETA_ALPHA * rate + (1.0 - ETA_ALPHA) * previous)
        self._write()

    def note_cached(self, count: int = 1) -> None:
        """Runs served from memo/store: they count toward completion
        but not toward the EWMA (a cache hit says nothing about how
        long the remaining *executed* runs will take)."""
        self.state["runs_completed"] += count
        self._write()

    def tick(self, **fields) -> None:
        """Merge arbitrary telemetry fields and maybe flush."""
        self.state.update(fields)
        self._write()

    def finish(self, status: str = "done") -> None:
        """Terminal heartbeat; always flushed."""
        self.state["status"] = status
        self.state["eta_seconds"] = 0.0 if status == "done" else None
        self._write(force=True)

    # -- derived -------------------------------------------------------------

    def _eta(self) -> Optional[float]:
        total = self.state["runs_total"]
        if total is None or self._ewma_run_seconds is None:
            return None
        remaining = max(0, total - self.state["runs_completed"])
        return round(remaining * self._ewma_run_seconds, 3)

    def snapshot(self) -> Dict:
        """The JSON payload a reader sees (also written to disk)."""
        now = time.time()
        state = dict(self.state)
        if state["status"] == "running":
            state["eta_seconds"] = self._eta()
        state["ewma_run_seconds"] = (
            round(self._ewma_run_seconds, 4)
            if self._ewma_run_seconds is not None else None)
        if self._ewma_instr_per_sec is not None:
            state["throughput_instructions_per_sec"] = round(
                self._ewma_instr_per_sec, 1)
        state["elapsed_seconds"] = round(now - self.started, 3)
        state["updated"] = now
        return state

    def summary(self) -> Dict:
        """Condensed final telemetry for the run manifest (v7)."""
        state = self.snapshot()
        return {
            "status": state["status"],
            "runs_completed": state["runs_completed"],
            "runs_total": state["runs_total"],
            "instructions_retired": state["instructions_retired"],
            "peak_queue_depth": state["peak_queue_depth"],
            "ewma_run_seconds": state["ewma_run_seconds"],
            "throughput_instructions_per_sec":
                state["throughput_instructions_per_sec"],
            "elapsed_seconds": state["elapsed_seconds"],
            "status_file": self.path,
        }

    # -- writing -------------------------------------------------------------

    def _write(self, force: bool = False) -> None:
        if not self.path:
            return
        now = time.time()
        if not force and now - self._last_write < self.min_interval:
            return
        self._last_write = now
        payload = json.dumps(self.snapshot(), indent=2, sort_keys=True)
        try:
            atomic_write_text(self.path, payload)
        except OSError:
            # telemetry must never kill the run it observes; a vanished
            # directory or full disk silently stops the heartbeat
            self.path = None


def read_status(path: str) -> Optional[Dict]:
    """Read one heartbeat; None when absent or (transiently) unreadable."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None
