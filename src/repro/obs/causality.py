"""Causal provenance: turn an engine trace into walkable lineage.

The :class:`~repro.core.trace.EngineTrace` is a flat event list; this
module folds it into a causal DAG keyed by activation id.  Each
:class:`Activation` collects the full life of one fired trigger —
trigger site (PC), fired/enqueued/dispatched/finished positions (both
event sequence and simulated cycle when available), outcome, the
duplicates it absorbed, and the activation whose trigger canceled it —
so questions like "why did activation 7 run?" or "why did the store at
PC 12 never fire?" become dictionary walks instead of log spelunking.

Everything here is pure data extraction: no I/O, no rendering.  The
``explain`` CLI and the HTML report (:mod:`repro.obs.report`) render
these structures; :func:`causal_summary` condenses them for the run
manifest.

Latency conventions: ``queue_wait`` is dispatch minus enqueue,
``execute`` is finish minus dispatch.  Both prefer simulated cycles
(timed/deferred runs attach a cycle source) and fall back to event
sequence ticks — the ``latency_unit`` field says which one a breakdown
is reporting, so numbers are never silently mixed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core import trace as T
from repro.core.trace import EngineEvent, EngineTrace

#: terminal states an activation can reach
OUTCOME_COMPLETED = "completed"
OUTCOME_CANCELED = "canceled"
OUTCOME_ABSORBED = "absorbed"   # duplicate folded into a pending/inline run
OUTCOME_PENDING = "pending"     # still enqueued/executing when trace ended


class Activation:
    """The reconstructed life of one fired trigger."""

    __slots__ = ("activation_id", "thread", "address", "pc", "values",
                 "fired_seq", "fired_cycle", "enqueued_seq", "queue_position",
                 "dispatched_seq", "dispatched_cycle", "dispatch_detail",
                 "finished_seq", "finished_cycle", "outcome",
                 "absorbed_into", "canceled_by", "absorbed")

    def __init__(self, activation_id: int):
        self.activation_id = activation_id
        self.thread: Optional[str] = None
        self.address: Optional[int] = None
        #: static PC of the triggering store
        self.pc: Optional[int] = None
        #: ``old->new`` of the triggering store, verbatim from the trace
        self.values: str = ""
        self.fired_seq: Optional[int] = None
        self.fired_cycle: Optional[int] = None
        self.enqueued_seq: Optional[int] = None
        #: queue depth at enqueue time (1 = went in first in line)
        self.queue_position: Optional[int] = None
        self.dispatched_seq: Optional[int] = None
        self.dispatched_cycle: Optional[int] = None
        #: where it ran: "context N", "context N (sync)", "inline on ..."
        self.dispatch_detail: str = ""
        self.finished_seq: Optional[int] = None
        self.finished_cycle: Optional[int] = None
        self.outcome: str = OUTCOME_PENDING
        #: the pending/inline activation that swallowed this duplicate
        self.absorbed_into: Optional[int] = None
        #: the fresh activation whose trigger canceled this one mid-run
        self.canceled_by: Optional[int] = None
        #: duplicate activations this one absorbed while pending/executing
        self.absorbed: List[int] = []

    @property
    def queue_wait(self) -> Optional[int]:
        """Dispatch latency in the best unit available (see latency_unit)."""
        if self.dispatched_cycle is not None and self.fired_cycle is not None:
            return self.dispatched_cycle - self.fired_cycle
        if self.dispatched_seq is not None and self.fired_seq is not None:
            return self.dispatched_seq - self.fired_seq
        return None

    @property
    def execute_time(self) -> Optional[int]:
        """Dispatch-to-finish latency in the best unit available."""
        if self.finished_cycle is not None and self.dispatched_cycle is not None:
            return self.finished_cycle - self.dispatched_cycle
        if self.finished_seq is not None and self.dispatched_seq is not None:
            return self.finished_seq - self.dispatched_seq
        return None

    @property
    def latency_unit(self) -> str:
        """``"cycles"`` when the trace carried a cycle source, else ``"events"``."""
        return ("cycles" if self.fired_cycle is not None
                or self.dispatched_cycle is not None else "events")

    def __repr__(self) -> str:
        return (f"Activation(#{self.activation_id} {self.thread!r} "
                f"addr={self.address} {self.outcome})")


class Suppression:
    """One same-value-filter suppression (a silent triggering store)."""

    __slots__ = ("sequence", "thread", "address", "pc")

    def __init__(self, sequence: int, thread: Optional[str],
                 address: Optional[int], pc: Optional[int]):
        self.sequence = sequence
        self.thread = thread
        self.address = address
        self.pc = pc

    def __repr__(self) -> str:
        return (f"Suppression(#{self.sequence} {self.thread!r} "
                f"addr={self.address} pc={self.pc})")


def _parse_queue_position(detail: str) -> Optional[int]:
    # enqueued events carry "pos=N"
    if detail.startswith("pos="):
        try:
            return int(detail[4:])
        except ValueError:
            return None
    return None


class CausalGraph:
    """Activations plus the causal edges between them, from one trace."""

    def __init__(self) -> None:
        self.activations: Dict[int, Activation] = {}
        self.suppressions: List[Suppression] = []
        #: consume-point outcomes (clean skips vs waits), in trace order
        self.consume_clean = 0
        self.consume_wait = 0
        self.dropped_events = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: EngineTrace) -> "CausalGraph":
        """Build from anything exposing ``.events`` and ``.dropped`` —
        a live :class:`~repro.core.trace.EngineTrace` or a compressed
        :class:`~repro.obs.ctrace.CTraceStream` (one streaming pass)."""
        graph = cls()
        graph.dropped_events = trace.dropped
        for event in trace.events:
            graph._absorb(event)
        return graph

    def _activation(self, activation_id: int) -> Activation:
        act = self.activations.get(activation_id)
        if act is None:
            act = self.activations[activation_id] = Activation(activation_id)
        return act

    def _absorb(self, event: EngineEvent) -> None:
        kind = event.kind
        aid = event.activation_id
        if kind == T.SUPPRESSED:
            self.suppressions.append(
                Suppression(event.sequence, event.thread, event.address,
                            event.pc))
            return
        if kind == T.CONSUME_CLEAN:
            self.consume_clean += 1
            return
        if kind == T.CONSUME_WAIT:
            self.consume_wait += 1
            return
        if aid is None:
            return
        act = self._activation(aid)
        if kind == T.FIRED:
            act.thread = event.thread
            act.address = event.address
            act.pc = event.pc
            act.values = event.detail
            act.fired_seq = event.sequence
            act.fired_cycle = event.cycle
        elif kind == T.DUPLICATE:
            act.thread = act.thread or event.thread
            act.address = event.address if act.address is None else act.address
            act.pc = event.pc if act.pc is None else act.pc
            act.fired_seq = act.fired_seq or event.sequence
            act.fired_cycle = (event.cycle if act.fired_cycle is None
                               else act.fired_cycle)
            act.outcome = OUTCOME_ABSORBED
            act.absorbed_into = event.cause_id
            if event.cause_id is not None:
                self._activation(event.cause_id).absorbed.append(aid)
        elif kind == T.ENQUEUED:
            act.enqueued_seq = event.sequence
            act.queue_position = _parse_queue_position(event.detail)
        elif kind == T.DISPATCHED:
            act.dispatched_seq = event.sequence
            act.dispatched_cycle = event.cycle
            act.dispatch_detail = event.detail
        elif kind == T.COMPLETED:
            act.finished_seq = event.sequence
            act.finished_cycle = event.cycle
            act.outcome = OUTCOME_COMPLETED
        elif kind == T.CANCELED:
            act.finished_seq = event.sequence
            act.finished_cycle = event.cycle
            act.outcome = OUTCOME_CANCELED
            act.canceled_by = event.cause_id
            if event.cause_id is not None:
                canceler = self._activation(event.cause_id)
                if aid not in canceler.absorbed:
                    canceler.absorbed.append(aid)

    # -- queries --------------------------------------------------------------

    def lineage(self, activation_id: int) -> List[Activation]:
        """The absorption chain starting at ``activation_id``.

        First element is the queried activation; each next element is
        the pending/inline activation that absorbed the previous one,
        ending at the activation that actually did (or will do) the
        work.  Length 1 when the activation ran itself.
        """
        chain: List[Activation] = []
        seen = set()
        act = self.activations.get(activation_id)
        while act is not None and act.activation_id not in seen:
            seen.add(act.activation_id)
            chain.append(act)
            nxt = act.absorbed_into
            act = self.activations.get(nxt) if nxt is not None else None
        return chain

    def by_outcome(self, outcome: str) -> List[Activation]:
        """All activations that ended with ``outcome`` (an OUTCOME_* value)."""
        return [a for a in self.activations.values() if a.outcome == outcome]

    def at_address(self, address: int) -> Tuple[List[Activation],
                                                List[Suppression]]:
        """Everything the trace knows about one trigger address."""
        acts = [a for a in self.activations.values() if a.address == address]
        sups = [s for s in self.suppressions if s.address == address]
        return acts, sups

    # -- aggregation ----------------------------------------------------------

    def _latencies(self) -> Tuple[List[int], List[int], str]:
        waits = [a.queue_wait for a in self.activations.values()
                 if a.queue_wait is not None]
        execs = [a.execute_time for a in self.activations.values()
                 if a.execute_time is not None]
        units = {a.latency_unit for a in self.activations.values()
                 if a.queue_wait is not None or a.execute_time is not None}
        if not units:
            unit = "events"
        elif len(units) == 1:
            unit = units.pop()
        else:
            unit = "mixed"
        return waits, execs, unit

    def latency_stats(self) -> Dict[str, object]:
        """Queue-wait / execute-time distribution over finished activations."""
        waits, execs, unit = self._latencies()
        return {
            "unit": unit,
            "queue_wait": _distribution(waits),
            "execute": _distribution(execs),
        }

    def site_attribution(self, profiler=None) -> List[Dict[str, object]]:
        """Per-static-store-site trigger outcomes, hottest first.

        When ``profiler`` (a
        :class:`~repro.profiling.redundancy.RedundantLoadProfiler` or a
        stored stand-in exposing ``store_sites()``) is given, its
        dynamic/silent counts join in — tying the causal trace back to
        the paper's redundancy measurements at the same PCs.
        """
        sites: Dict[Optional[int], Dict[str, object]] = {}

        def site(pc: Optional[int]) -> Dict[str, object]:
            row = sites.get(pc)
            if row is None:
                row = sites[pc] = {
                    "pc": pc, "fired": 0, "absorbed": 0, "canceled": 0,
                    "completed": 0, "suppressed": 0,
                }
            return row

        for act in self.activations.values():
            row = site(act.pc)
            row["fired"] += 1
            if act.outcome in (OUTCOME_COMPLETED, OUTCOME_CANCELED,
                               OUTCOME_ABSORBED):
                row[act.outcome] += 1
        for sup in self.suppressions:
            site(sup.pc)["suppressed"] += 1
        if profiler is not None:
            for stats in profiler.store_sites():
                row = sites.get(stats.pc)
                if row is not None:
                    row["dynamic_stores"] = stats.dynamic
                    row["silent_stores"] = stats.silent
        return sorted(sites.values(),
                      key=lambda r: -(r["fired"] + r["suppressed"]))

    def summary(self) -> Dict[str, object]:
        """Condensed causal stats, manifest- and JSON-friendly."""
        latency = self.latency_stats()
        waits, execs, _unit = self._latencies()
        return {
            "queue_wait_hist": bucket_histogram(waits),
            "execute_hist": bucket_histogram(execs),
            "activations": len(self.activations),
            "completed": len(self.by_outcome(OUTCOME_COMPLETED)),
            "canceled": len(self.by_outcome(OUTCOME_CANCELED)),
            "absorbed": len(self.by_outcome(OUTCOME_ABSORBED)),
            "pending": len(self.by_outcome(OUTCOME_PENDING)),
            "suppressed_silent": len(self.suppressions),
            "consume_clean": self.consume_clean,
            "consume_wait": self.consume_wait,
            "latency_unit": latency["unit"],
            "mean_queue_wait": latency["queue_wait"]["mean"],
            "max_queue_wait": latency["queue_wait"]["max"],
            "dropped_events": self.dropped_events,
        }

    def __repr__(self) -> str:
        return (f"CausalGraph({len(self.activations)} activations, "
                f"{len(self.suppressions)} suppressions)")


#: fixed power-of-two bucket bounds for the compact manifest histograms
_HIST_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def bucket_histogram(values: Sequence[int]) -> List[List[object]]:
    """Counts per power-of-two bucket: ``[["<=1", n], ..., [">256", n]]``.

    A fixed, tiny layout so the manifest stays small and histograms from
    different runs merge by label.
    """
    counts = [0] * (len(_HIST_BOUNDS) + 1)
    for value in values:
        for i, bound in enumerate(_HIST_BOUNDS):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    labels = [f"<={b}" for b in _HIST_BOUNDS] + [f">{_HIST_BOUNDS[-1]}"]
    return [[label, count] for label, count in zip(labels, counts)]


def merge_histograms(first: Sequence[Sequence], second: Sequence[Sequence]
                     ) -> List[List[object]]:
    """Label-wise sum of two :func:`bucket_histogram` outputs."""
    if not first:
        return [list(pair) for pair in second]
    merged = {label: count for label, count in first}
    for label, count in second:
        merged[label] = merged.get(label, 0) + count
    return [[label, merged.get(label, 0)]
            for label, _ in bucket_histogram([])]


def _distribution(values: Sequence[int]) -> Dict[str, Optional[float]]:
    if not values:
        return {"count": 0, "mean": None, "max": None, "min": None}
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "max": max(values),
        "min": min(values),
    }


def causal_summary(named_traces: Iterable[Tuple[str, EngineTrace]]
                   ) -> Dict[str, object]:
    """Merged causal summary over a runner's traces, for the manifest.

    Counts are summed; ``mean_queue_wait`` is weighted by each trace's
    finished-activation count; ``latency_unit`` degrades to ``"mixed"``
    if traces disagree.
    """
    merged: Dict[str, object] = {
        "traces": 0, "activations": 0, "completed": 0, "canceled": 0,
        "absorbed": 0, "pending": 0, "suppressed_silent": 0,
        "consume_clean": 0, "consume_wait": 0, "dropped_events": 0,
        "latency_unit": None, "mean_queue_wait": None, "max_queue_wait": None,
        "queue_wait_hist": [], "execute_hist": [],
    }
    wait_total = 0.0
    wait_count = 0
    for _name, trace in named_traces:
        graph = CausalGraph.from_trace(trace)
        stats = graph.summary()
        merged["traces"] += 1
        for key in ("activations", "completed", "canceled", "absorbed",
                    "pending", "suppressed_silent", "consume_clean",
                    "consume_wait", "dropped_events"):
            merged[key] += stats[key]
        unit = stats["latency_unit"]
        if merged["latency_unit"] is None:
            merged["latency_unit"] = unit
        elif merged["latency_unit"] != unit:
            merged["latency_unit"] = "mixed"
        merged["queue_wait_hist"] = merge_histograms(
            merged["queue_wait_hist"], stats["queue_wait_hist"])
        merged["execute_hist"] = merge_histograms(
            merged["execute_hist"], stats["execute_hist"])
        dist = graph.latency_stats()["queue_wait"]
        if dist["count"]:
            wait_total += dist["mean"] * dist["count"]
            wait_count += dist["count"]
            current_max = merged["max_queue_wait"]
            merged["max_queue_wait"] = (dist["max"] if current_max is None
                                        else max(current_max, dist["max"]))
    if wait_count:
        merged["mean_queue_wait"] = wait_total / wait_count
    return merged
