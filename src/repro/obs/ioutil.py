"""Shared file-writing conventions for observability artifacts.

Every exported artifact (Chrome traces, HTML reports, JSON snapshots) is
written the same way the result store writes entries: UTF-8, to a
temporary file in the target directory, then atomically renamed into
place with ``os.replace`` — a killed process never leaves a truncated
artifact where a complete one is expected.
"""

from __future__ import annotations

import os
import tempfile


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically, UTF-8 encoded."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
