"""Shared file-writing conventions for observability artifacts.

Every exported artifact (Chrome traces, HTML reports, JSON snapshots,
compressed event traces) is written the same way the result store writes
entries: to a temporary file in the target directory, fsynced, then
atomically renamed into place with ``os.replace`` — a killed process
never leaves a truncated artifact where a complete one is expected, and
a crash after the rename never loses the fsynced bytes to the page
cache.

Crashes *before* the rename leave an orphaned ``tmp*.tmp`` file behind;
:func:`cleanup_orphan_tmp` sweeps those, and both writers call it
best-effort on the directory they are about to write into, so a
long-lived store directory self-heals instead of accumulating debris.

Text artifacts are UTF-8 via :func:`atomic_write_text`; binary artifacts
(the compressed trace format) stream through :class:`AtomicBinaryWriter`,
which exposes a file-like ``write`` so encoders never buffer the whole
artifact in memory.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Optional

#: age (seconds) past which an orphaned temp file is considered dead.
#: Generous: the longest legitimate writer is a full-suite traced run.
ORPHAN_TMP_AGE_SECONDS = 24 * 3600


def cleanup_orphan_tmp(directory: str,
                       max_age_seconds: float = ORPHAN_TMP_AGE_SECONDS) -> int:
    """Remove stale ``tmp*.tmp`` files a crashed writer left behind.

    Only touches names matching the ``mkstemp(prefix="tmp",
    suffix=".tmp")`` shape used here, and only when older than
    ``max_age_seconds`` — a concurrent writer's live temp file is never
    young enough to be swept.  Returns the number removed; never raises
    (cleanup is a courtesy, not a contract).
    """
    removed = 0
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    cutoff = time.time() - max_age_seconds
    for name in names:
        if not (name.startswith("tmp") and name.endswith(".tmp")):
            continue
        path = os.path.join(directory, name)
        try:
            if os.path.isfile(path) and os.path.getmtime(path) < cutoff:
                os.unlink(path)
                removed += 1
        except OSError:
            continue
    return removed


def _fsync_handle(handle) -> None:
    handle.flush()
    try:
        os.fsync(handle.fileno())
    except OSError:
        # e.g. a filesystem that refuses fsync on this node; the rename
        # below is still atomic, we only lose crash durability
        pass


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically, UTF-8 encoded and fsynced."""
    directory = os.path.dirname(os.path.abspath(path))
    cleanup_orphan_tmp(directory)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            _fsync_handle(handle)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically, fsynced (binary twin)."""
    with AtomicBinaryWriter(path) as handle:
        handle.write(data)


class AtomicBinaryWriter:
    """Streaming binary writer with the same atomic-rename contract.

    A file-like object (``write``, ``tell``, ``close``) that stages
    bytes in a temp file beside ``path`` and only renames into place on
    a clean :meth:`commit` (or context-manager exit without an
    exception).  :meth:`abort` — or an exception inside the ``with``
    block — deletes the staging file, leaving any previous artifact at
    ``path`` untouched.  The compressed trace writer streams chunks
    through this, so a killed run leaves either the old complete trace
    or none, never a torn one.
    """

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        cleanup_orphan_tmp(directory)
        fd, self._tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        self._handle: Optional[object] = os.fdopen(fd, "wb")
        self.bytes_written = 0

    def write(self, data: bytes) -> int:
        """Append ``data`` to the pending temp file; returns bytes written."""
        if self._handle is None:
            raise ValueError(f"writer for {self.path!r} already closed")
        written = self._handle.write(data)
        self.bytes_written += written
        return written

    def tell(self) -> int:
        """Total bytes written so far (the pending file's length)."""
        return self.bytes_written

    def commit(self) -> None:
        """Fsync and atomically rename the staged bytes into place."""
        if self._handle is None:
            return
        _fsync_handle(self._handle)
        self._handle.close()
        self._handle = None
        os.replace(self._tmp, self.path)

    def abort(self) -> None:
        """Discard the staged bytes; ``path`` is left as it was."""
        if self._handle is None:
            return
        self._handle.close()
        self._handle = None
        try:
            os.unlink(self._tmp)
        except OSError:
            pass

    # alias so the writer quacks like a file for code that close()s
    close = commit

    def __enter__(self) -> "AtomicBinaryWriter":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.abort()
