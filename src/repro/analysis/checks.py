"""DTT safety checks: is a conversion safe under the paper's contract?

The contract (PAPER.md): a data-triggered thread's computation may depend
only on the triggering store's data and on memory that does not change
between the trigger and the consume point.  Nothing at runtime enforces
it — the engine will happily skip "redundant" re-execution of a thread
whose inputs drifted, silently computing wrong answers.  These passes
check the contract statically over a :class:`~repro.workloads.base.DttBuild`
(program + trigger specs) for one :class:`~repro.core.config.DttConfig`.

Every check is grounded in a specific engine behavior (each check
function's docstring carries the detailed justification):

* trigger matching replicates
  :meth:`~repro.core.registry.ThreadRegistry.build_prefilter` for the
  config's ``granularity`` — including the watch-range widening that
  creates false neighbor triggers at cache-line granularity;
* the *trigger window* — the pcs where a support thread may run
  concurrently with the main context — ends at a ``tcheck`` naming the
  thread, because ``DttEngine.on_tcheck`` does not let the main context
  past one until the thread is quiescent (it blocks, runs the pending
  activation synchronously, or inlines it and re-executes the tcheck);
* a re-trigger of the *same* spec is not a race: ``on_triggering_store``
  cancels an executing same-key activation and restarts it against
  current memory (inline activations absorb the duplicate after the new
  value is already visible), so the thread re-reads rather than races;
* with ``allow_cascading=False`` (the paper's base design) a triggering
  store executed by a support thread is a plain store and registers no
  trigger, so only main-region ``tst``/``tstx`` are trigger sources.

The checks are *may*-analyses over the abstract address sets of
:mod:`repro.analysis.dataflow`: they can report a race that concrete
inputs never realize (the address sets over-approximate), but a clean
verdict means no reachable access pattern can violate the contract under
the analyzed config — modulo the framework's documented in-bounds
indexing assumption.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis import cfg as cfgmod
from repro.analysis.dataflow import (TOP, UNDEF, AddressSet,
                                     ReachingDefinitions, ValueAnalysis,
                                     Value, access_summary, const_value,
                                     region_containing, region_value,
                                     union_addresses)
from repro.analysis.findings import ERROR, WARNING, Finding, Severity
from repro.analysis.symbolic import (NONE, SOME, SymbolicValues,
                                     overlap_verdict, symbolic_access_map,
                                     thread_entry_env)
from repro.core.config import DttConfig
from repro.core.registry import ThreadRegistry, TriggerSpec, widen_ranges
from repro.errors import DttError
from repro.isa.instructions import (is_triggering_store, operand_roles)
from repro.isa.program import Program
from repro.isa.registers import (NUM_REGISTERS, TRIGGER_ADDR_REG,
                                 TRIGGER_OLD_VALUE_REG, TRIGGER_VALUE_REG)

#: check code -> (severity, one-line description); the docs table in
#: docs/architecture.md must list every code here (tests/test_docs_sync.py)
CHECKS: Dict[str, Tuple[Severity, str]] = {
    "dead-trigger": (
        WARNING,
        "a reachable triggering store that no registered trigger spec "
        "can ever match"),
    "dead-thread": (
        WARNING,
        "a registered support thread that no reachable triggering store "
        "can ever fire"),
    "spec-unknown-thread": (
        ERROR,
        "a trigger spec names a support thread the program does not "
        "declare"),
    "read-race": (
        ERROR,
        "main may overwrite memory a support thread reads inside the "
        "trigger window"),
    "write-race": (
        ERROR,
        "support-thread output overlaps main-context accesses with no "
        "tcheck ordering"),
    "consume-before-complete": (
        ERROR,
        "a path consumes support-thread output without passing the "
        "thread's tcheck"),
    "uninitialized-register": (
        ERROR,
        "a support-thread body reads a register never written on some "
        "path"),
    "parameterized-race": (
        ERROR,
        "a main access collides with a parameterized thread access for "
        "some (not all) trigger addresses"),
    "symbolic-unresolved-region": (
        WARNING,
        "a support-thread access resolves to no region concretely or "
        "symbolically — race checks degrade to may-touch-anything"),
}

#: per-check semantic version, baked into finding fingerprints (see
#: :meth:`~repro.analysis.findings.Finding.fingerprint`).  Bump a code's
#: version whenever its *meaning* changes so committed baselines
#: invalidate loudly.  The three race checks are at v2: since the
#: symbolic pass they evaluate per-access overlap for all parameter
#: instantiations (refuting provably-disjoint pairs) instead of testing
#: one union of concrete address sets.
CHECK_VERSIONS: Dict[str, int] = {code: 1 for code in CHECKS}
CHECK_VERSIONS.update({
    "read-race": 2,
    "write-race": 2,
    "consume-before-complete": 2,
})


def _finding(severity, code: str, pc, message: str,
             detail: str = "") -> Finding:
    """A finding stamped with its check's current semantic version."""
    return Finding(severity, code, pc, message, detail=detail,
                   version=CHECK_VERSIONS[code])


# ---------------------------------------------------------------------------
# region models
# ---------------------------------------------------------------------------


class _MainModel:
    """CFG + values + access summary of the main execution region.

    The abstract register file at main entry is all-zero constants: the
    machine constructs every context with a zeroed register file and the
    main context starts fresh at program entry.
    """

    def __init__(self, program: Program):
        self.cfg = cfgmod.main_cfg(program)
        self.values = ValueAnalysis(
            self.cfg,
            {reg: const_value(0) for reg in range(NUM_REGISTERS)},
        )
        self.summary = access_summary(self.values)


class _ThreadModel:
    """CFG + values + access summary of one support thread's body.

    At dispatch ``Context.start_support`` seeds r1/r2/r3 with the trigger
    address / new value / old value; every *other* register is stale —
    whatever the support context's previous activation (of any thread)
    left behind, or the construction-time zeros on first use.  So the
    entry environment is ⊤ everywhere except r1, which is seeded with the
    spec's possible trigger addresses (r2/r3 hold data values, not
    addresses, and stay ⊤).

    Alongside the concrete model runs the symbolic one
    (:mod:`repro.analysis.symbolic`): ``symbolic_addresses`` maps each
    access pc to its address as an affine expression over the trigger
    arguments, or None where the address is not a function of them.
    The race pass consults it per access to refine the concrete
    may-overlap verdict across all parameter instantiations.
    """

    def __init__(self, program: Program, name: str, trigger_value: Value):
        self.cfg = cfgmod.thread_cfg(program, name)
        env = {reg: TOP for reg in range(NUM_REGISTERS)}
        env[TRIGGER_ADDR_REG] = trigger_value
        self.values = ValueAnalysis(self.cfg, env)
        self.summary = access_summary(self.values)
        self.reads = union_addresses(s for _pc, s in self.summary.reads)
        self.writes = union_addresses(s for _pc, s in self.summary.writes)
        self.symbolic = SymbolicValues(self.cfg, thread_entry_env())
        self.symbolic_addresses = symbolic_access_map(self.symbolic)


def _spec_may_match(spec: TriggerSpec, pc: int, addresses: AddressSet,
                    layout, granularity: int) -> bool:
    """Could a triggering store at ``pc`` with this address set fire
    ``spec``?  Mirrors ``ThreadRegistry.matches``: exact on store pcs,
    granularity-widened on watch ranges (via the engine's own
    :func:`~repro.core.registry.widen_ranges`, not a local re-derivation
    — so tstores inserted by the automatic converter get exactly the
    widening the engine will apply at run time); ⊤ address sets may
    match anything watched."""
    if pc in spec.store_pcs:
        return True
    return bool(spec.watch) and addresses.intersects_ranges(
        widen_ranges(spec.watch, granularity), layout)


def _trigger_address_value(spec: TriggerSpec, main: _MainModel,
                           layout, granularity: int) -> Value:
    """The abstract value of r1 (trigger address) at thread entry.

    For a watched spec: the data regions its granularity-widened ranges
    overlap.  For a pc-matched spec: the union of the address sets of the
    named stores.  ⊤ when any source is unresolvable.
    """
    if spec.watch:
        names = set()
        for lo, hi in widen_ranges(spec.watch, granularity):
            for name, (base, size) in layout.items():
                if base < hi and lo < base + max(size, 1):
                    names.add(name)
        return region_value(names) if names else TOP
    sets = [s for pc, s in main.summary.tstores if pc in spec.store_pcs]
    if not sets:
        return TOP
    union = union_addresses(sets)
    if union.top:
        return TOP
    if not union.regions and len(union.exact) == 1:
        return const_value(next(iter(union.exact)))
    names = set(union.regions)
    for address in union.exact:
        name = region_containing(address, layout)
        if name is None:
            return TOP
        names.add(name)
    return region_value(names)


def _trigger_feasible_ranges(
        spec: TriggerSpec, main: _MainModel, layout,
        granularity: int) -> Optional[List[Tuple[int, int]]]:
    """Half-open word ranges r1 can take at thread entry, or None when
    unbounded.

    Mirrors :func:`_trigger_address_value` but keeps word precision: a
    watched spec's r1 is confined to its granularity-widened ranges; a
    pc-matched spec's r1 is the union of the named stores' concrete
    address ranges.  None (⊤) disables symbolic refinement — every
    verdict then falls back to the concrete overlap test.
    """
    if spec.watch:
        return list(widen_ranges(spec.watch, granularity))
    ranges: List[Tuple[int, int]] = []
    for pc, addresses in main.summary.tstores:
        if pc not in spec.store_pcs:
            continue
        if addresses.top:
            return None
        ranges.extend(addresses._ranges(layout))
    return ranges or None


def _overlap_class(
        main_addresses: AddressSet,
        thread_accesses: Sequence[Tuple[int, AddressSet]],
        symbolic_addresses: Dict[int, object],
        feasible: Optional[List[Tuple[int, int]]],
        layout) -> Tuple[str, List[str]]:
    """Classify one main access against a thread's per-access list.

    Returns ``(kind, symbolic_hits)`` where kind is:

    * ``"classic"`` — some concretely-overlapping thread access either
      has no affine address (symbolic refinement impossible) or hits the
      main access for *every* feasible trigger address: the pre-symbolic
      verdict stands;
    * ``"parameterized"`` — every concrete overlap was refined, and at
      least one thread access hits for *some but not all* instantiations
      (``symbolic_hits`` carries their affine forms);
    * ``"disjoint"`` — every concretely-overlapping thread access was
      *refuted*: for each feasible trigger address the symbolic address
      provably misses the main access.  The concrete union overlapped
      only because it conflated different instantiations.
    """
    saw_classic = False
    symbolic_hits: List[str] = []
    refine = feasible is not None and not main_addresses.top
    targets = main_addresses._ranges(layout) if refine else ()
    for tpc, tset in thread_accesses:
        if not main_addresses.overlaps(tset, layout):
            continue
        expr = symbolic_addresses.get(tpc) if refine else None
        if expr is None:
            saw_classic = True
            continue
        verdict = overlap_verdict(expr, feasible, targets)
        if verdict == NONE:
            continue
        if verdict == SOME:
            symbolic_hits.append(expr.describe())
        else:  # ALL, or UNKNOWN (params beyond r1): no refinement
            saw_classic = True
    if saw_classic:
        return "classic", symbolic_hits
    if symbolic_hits:
        return "parameterized", symbolic_hits
    return "disjoint", []


def _thread_tid(program: Program, name: str) -> int:
    """The ``tcheck`` immediate naming this thread: its index in
    declaration order, exactly how ``DttEngine._thread_name`` resolves a
    tid back to a name."""
    return list(program.threads).index(name)


def _tcheck_pcs(main: _MainModel, program: Program, name: str) -> Set[int]:
    tid = _thread_tid(program, name)
    return {
        pc for pc in main.cfg.pcs
        if main.cfg.instruction_at(pc).op == "tcheck"
        and int(main.cfg.instruction_at(pc).a) == tid
    }


def _trigger_window(main: _MainModel, trigger_pcs: Iterable[int],
                    barrier_pcs: Set[int]) -> Set[int]:
    """PCs where an activation fired at ``trigger_pcs`` may still be in
    flight: everything reachable from a trigger's successors without
    passing a barrier ``tcheck``.

    Justification: ``on_tcheck`` never lets the main context fall through
    a tcheck naming thread T while T has a pending or executing
    activation — it blocks until quiescence (deferred/pool mode), runs
    the pending entry synchronously, or inlines it and re-executes the
    tcheck.  So on every path the first matching tcheck is a completion
    barrier, and only the pcs *before* it can race with the thread.  The
    window is mode-agnostic: inline and synchronous modes shrink the
    concurrency to nothing at runtime, but a program is only safe if it
    is safe in the most concurrent mode (deferred + dispatch pool).
    """
    seen: Set[int] = set()
    work: List[int] = []
    for pc in trigger_pcs:
        work.extend(main.cfg.succ_pcs.get(pc, ()))
    while work:
        pc = work.pop()
        if pc in seen or pc not in main.cfg.pcs or pc in barrier_pcs:
            continue
        seen.add(pc)
        work.extend(main.cfg.succ_pcs[pc])
    return seen


# ---------------------------------------------------------------------------
# the passes
# ---------------------------------------------------------------------------


def _check_trigger_coverage(program: Program, registry: ThreadRegistry,
                            config: DttConfig,
                            main: _MainModel) -> List[Finding]:
    """dead-trigger / dead-thread / spec-unknown-thread.

    **dead-trigger** replays the engine's own matching: the engine builds
    a :class:`~repro.core.registry.TriggerPrefilter` for
    ``config.granularity`` and a store that misses it fires nothing
    (counted as ``unmatched_tstores``).  We build the same prefilter, so
    the verdict inherits the exact granularity widening (``lo -= lo % g;
    hi += (-hi) % g``, coalesced) — a store that only matches via a
    widened neighbor range is correctly *not* dead at g=16 even though it
    is dead at g=1.  Only main-region stores are scanned: with
    ``allow_cascading=False`` a support thread's ``tst`` is a plain store
    by engine fiat (``lint`` separately warns ``tstore-in-thread``), and
    with cascading enabled thread-body stores are real sources we
    conservatively assume can match (no flag).

    **dead-thread** is the inverse: a registered spec none of whose
    sources can fire — no reachable main-region triggering store is in
    its ``store_pcs``, and no reachable store's address set can land in
    its (widened) watch ranges.  The thread then never runs and the
    conversion silently degenerates to the baseline.  Suppressed entirely
    when cascading is on and any thread body contains a triggering store,
    because those are then additional sources we don't model.

    **spec-unknown-thread**: ``DttEngine.bind`` resolves each spec's
    thread name against ``program.threads`` and raises ``RegistryError``
    for an unknown name — a run-time crash found at analysis time.
    """
    findings: List[Finding] = []
    layout = program.layout
    granularity = config.granularity
    prefilter = registry.build_prefilter(granularity)
    for pc, addresses in main.summary.tstores:
        if pc in prefilter.store_pcs:
            continue
        if addresses.intersects_ranges(prefilter.ranges, layout):
            continue
        findings.append(_finding(
            WARNING, "dead-trigger", pc,
            "triggering store can never fire a registered thread",
            detail=f"stores to {addresses.describe(layout)} "
                   f"(granularity {granularity})",
        ))
    cascading_sources = config.allow_cascading and any(
        is_triggering_store(program.instructions[pc].op)
        for region in cfgmod.thread_regions(program).values()
        for pc in region
        if pc < len(program.instructions)
    )
    for spec in registry.specs:
        if spec.thread not in program.threads:
            findings.append(_finding(
                ERROR, "spec-unknown-thread", None,
                f"trigger spec names thread {spec.thread!r}, which the "
                "program does not declare",
            ))
            continue
        if cascading_sources:
            continue
        if any(_spec_may_match(spec, pc, addresses, layout, granularity)
               for pc, addresses in main.summary.tstores):
            continue
        findings.append(_finding(
            WARNING, "dead-thread", program.thread_entry_pc(spec.thread),
            f"thread {spec.thread!r} can never be triggered",
            detail=repr(spec),
        ))
    return findings


def _check_races(program: Program, registry: ThreadRegistry,
                 config: DttConfig, main: _MainModel) -> List[Finding]:
    """read-race / write-race / consume-before-complete.

    For each spec we intersect the main region's accesses *inside the
    trigger window* (see :func:`_trigger_window`) with the thread body's
    abstract read/write sets:

    **read-race** — a main-region store in the window overlaps the thread's
    may-read set: the thread observes the location before or after the
    store depending on scheduling, so its output depends on more than the
    triggering datum — the paper's unsoundness case (store a watched
    input twice, plain-store the second time, and the skip logic keeps a
    stale result).  Triggering stores that may re-fire the *same spec*
    are excluded: ``on_triggering_store`` cancels an executing same-key
    activation and restarts it (a pending one is superseded in the queue;
    an inline one absorbs the duplicate having already read the new
    value), so the thread re-reads current memory instead of racing.

    **write-race** — an overlapping access to memory the thread *writes*
    with no ordering possible: either a main store to thread output
    inside the window (last-writer-wins by scheduling), or a main load of
    thread output when the main region contains *no* ``tcheck`` naming
    the thread at all — nothing ever orders the consumer after the
    producer.

    **consume-before-complete** — the program does tcheck the thread, but
    some path reads thread output inside the window, i.e. between a may-
    matching trigger and the barrier.  On that path the engine has not
    absorbed the activation (``on_tcheck`` is the only wait point), so
    the consumer can observe pre-thread memory.  Distinct from
    write-race only in intent: the ordering mechanism exists but a path
    escapes it.

    Since v2, every one of these overlap tests is evaluated *per thread
    access* and refined through the symbolic pass
    (:func:`_overlap_class`): a thread access whose address is affine in
    the trigger address is compared against the main access for every
    feasible trigger value.  Provably-disjoint pairs are dropped (the
    concrete union over-approximated across instantiations); pairs that
    collide only for *some* instantiations demote to the
    **parameterized-race** code — still an error (a reachable
    instantiation races) but telling the reader which affine addresses
    to look at; pairs colliding for all instantiations (or unrefinable
    ones) keep the classic codes.

    **symbolic-unresolved-region** (warning) marks thread accesses both
    analyses gave up on — concrete ⊤ *and* no affine form — because
    every overlap test against them degenerates to "may touch
    anything"; one such access can make the whole verdict vacuous.
    """
    findings: List[Finding] = []
    layout = program.layout
    granularity = config.granularity
    for spec in registry.specs:
        if spec.thread not in program.threads:
            continue  # flagged by trigger coverage
        matching = [
            (pc, addresses) for pc, addresses in main.summary.tstores
            if _spec_may_match(spec, pc, addresses, layout, granularity)
        ]
        if not matching:
            continue  # dead thread: no window to race in
        thread = _ThreadModel(
            program, spec.thread,
            _trigger_address_value(spec, main, layout, granularity))
        feasible = _trigger_feasible_ranges(spec, main, layout, granularity)
        for tpc, tset in list(thread.summary.reads) + list(
                thread.summary.writes):
            if tset.top and thread.symbolic_addresses.get(tpc) is None:
                findings.append(_finding(
                    WARNING, "symbolic-unresolved-region", tpc,
                    f"thread {spec.thread!r} access resolves to no "
                    "region concretely or symbolically",
                    detail=f"thread={spec.thread}",
                ))
        barriers = _tcheck_pcs(main, program, spec.thread)
        window = _trigger_window(main, (pc for pc, _ in matching), barriers)
        matching_pcs = {pc for pc, _ in matching}
        for pc, addresses in main.summary.writes:
            if pc not in window or pc in matching_pcs:
                continue
            kind, hits = _overlap_class(
                addresses, thread.summary.reads,
                thread.symbolic_addresses, feasible, layout)
            if kind == "classic":
                findings.append(_finding(
                    ERROR, "read-race", pc,
                    f"store may overwrite memory thread {spec.thread!r} "
                    "reads while it can still be in flight",
                    detail=f"{addresses.describe(layout)} vs thread reads "
                           f"{thread.reads.describe(layout)}",
                ))
            elif kind == "parameterized":
                findings.append(_finding(
                    ERROR, "parameterized-race", pc,
                    f"store may overwrite memory thread {spec.thread!r} "
                    "reads for some trigger addresses",
                    detail=f"{addresses.describe(layout)} vs thread reads "
                           f"at {', '.join(hits)}",
                ))
            kind, hits = _overlap_class(
                addresses, thread.summary.writes,
                thread.symbolic_addresses, feasible, layout)
            if kind == "classic":
                findings.append(_finding(
                    ERROR, "write-race", pc,
                    f"store overlaps output of thread {spec.thread!r} "
                    "inside its trigger window",
                    detail=f"{addresses.describe(layout)} vs thread writes "
                           f"{thread.writes.describe(layout)}",
                ))
            elif kind == "parameterized":
                findings.append(_finding(
                    ERROR, "parameterized-race", pc,
                    f"store overlaps output of thread {spec.thread!r} "
                    "for some trigger addresses",
                    detail=f"{addresses.describe(layout)} vs thread writes "
                           f"at {', '.join(hits)}",
                ))
        for pc, addresses in main.summary.reads:
            if pc not in window:
                continue
            kind, hits = _overlap_class(
                addresses, thread.summary.writes,
                thread.symbolic_addresses, feasible, layout)
            if kind == "disjoint":
                continue
            if kind == "parameterized":
                findings.append(_finding(
                    ERROR, "parameterized-race", pc,
                    f"load consumes output of thread {spec.thread!r} "
                    "for some trigger addresses, with no ordering",
                    detail=f"{addresses.describe(layout)} vs thread writes "
                           f"at {', '.join(hits)}",
                ))
            elif barriers:
                findings.append(_finding(
                    ERROR, "consume-before-complete", pc,
                    f"load consumes output of thread {spec.thread!r} "
                    "on a path with no intervening tcheck",
                    detail=f"{addresses.describe(layout)} vs thread "
                           f"writes {thread.writes.describe(layout)}",
                ))
            else:
                findings.append(_finding(
                    ERROR, "write-race", pc,
                    f"load consumes output of thread {spec.thread!r} "
                    "but the program never tchecks it",
                    detail=f"{addresses.describe(layout)} vs thread "
                           f"writes {thread.writes.describe(layout)}",
                ))
    return findings


def _check_uninitialized(program: Program) -> List[Finding]:
    """uninitialized-register, over support-thread bodies only.

    At dispatch ``Context.start_support`` writes exactly r1/r2/r3; every
    other register of the support context holds whatever the *previous*
    activation on that context left there (zeros only on the context's
    very first use).  Under the inline fallback (queue overflow,
    single-context tcheck) the body instead runs on the main context with
    main's live registers, saved and restored around the call.  A body
    that reads a register it never wrote therefore computes from
    schedule-dependent garbage — a contract violation (the thread depends
    on state other than the triggering store's data), reported as an
    error.

    The main region is exempt: its context is constructed zeroed and
    starts fresh, so a read-before-write there is a well-defined read of
    zero (common builder idiom for accumulators).

    Implemented as reaching definitions with r1/r2/r3 pre-defined at
    entry and an explicit "undefined" pseudo-definition that survives
    joins, so only registers undefined on *some* path are flagged (a
    register defined on every path is fine even if no single dominating
    definition exists).
    """
    findings: List[Finding] = []
    entry_regs = (TRIGGER_ADDR_REG, TRIGGER_VALUE_REG, TRIGGER_OLD_VALUE_REG)
    for name in program.threads:
        tcfg = cfgmod.thread_cfg(program, name)
        reaching = ReachingDefinitions(tcfg, entry_regs=entry_regs)
        for pc in sorted(tcfg.pcs):
            instruction = tcfg.instruction_at(pc)
            _dest, sources = operand_roles(instruction.op)
            if not sources:
                continue
            defs = reaching.defs_at(pc)
            reported: Set[int] = set()
            for slot in sources:
                reg = getattr(instruction, slot)
                if reg in reported:
                    continue
                if UNDEF in defs.get(reg, frozenset()):
                    reported.add(reg)
                    findings.append(_finding(
                        ERROR, "uninitialized-register", pc,
                        f"thread {name!r} reads r{reg} before any "
                        "definition",
                        detail=f"thread={name}",
                    ))
    return findings


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def analyze_program(
    program: Program,
    specs: Union[ThreadRegistry, Sequence[TriggerSpec], None] = None,
    config: Optional[DttConfig] = None,
    include_lint: bool = True,
) -> List[Finding]:
    """Run every applicable pass; returns deduplicated, sorted findings.

    Lint runs first (the structural checks gate the semantic ones —
    there is no point racing a thread body that never ``treturn``\\ s);
    the uninitialized-register pass needs only the program; the trigger-
    coverage and race passes additionally need the trigger ``specs`` and
    the engine ``config`` (default :class:`~repro.core.config.DttConfig`:
    granularity 1, no cascading) and are skipped without specs.
    """
    config = config if config is not None else DttConfig()
    findings: List[Finding] = []
    if include_lint:
        from repro.isa.lint import lint_program  # circular-safe

        findings.extend(lint_program(program))
    findings.extend(_check_uninitialized(program))
    if specs is not None:
        registry = (specs if isinstance(specs, ThreadRegistry)
                    else ThreadRegistry(specs))
        if len(registry):
            main = _MainModel(program)
            findings.extend(
                _check_trigger_coverage(program, registry, config, main))
            findings.extend(_check_races(program, registry, config, main))
    unique: List[Finding] = []
    seen: Set[Finding] = set()
    for finding in findings:
        if finding not in seen:
            seen.add(finding)
            unique.append(finding)
    unique.sort(key=Finding.sort_key)
    return unique


def analyze_build(build, config: Optional[DttConfig] = None,
                  include_lint: bool = True) -> List[Finding]:
    """Analyze a :class:`~repro.workloads.base.DttBuild` (program +
    specs)."""
    return analyze_program(build.program, build.specs, config=config,
                           include_lint=include_lint)


def analyze_workload(
    workload: Union[str, object],
    kind: str = "dtt",
    seed: Optional[int] = None,
    scale: Optional[int] = None,
    config: Optional[DttConfig] = None,
) -> List[Finding]:
    """Analyze one bundled workload's build of the given ``kind``
    (``baseline`` / ``dtt`` / ``dtt-watch``)."""
    from repro.workloads.suite import get_workload

    if isinstance(workload, str):
        workload = get_workload(workload)
    inp = workload.make_input(seed, scale)
    if kind == "baseline":
        return analyze_program(workload.build_baseline(inp), config=config)
    if kind == "dtt":
        return analyze_build(workload.build_dtt(inp), config=config)
    if kind in ("dtt-watch", "dtt_watch"):
        build = workload.build_dtt_watch(inp)
        if build is None:
            raise DttError(
                f"workload {workload.name!r} has no address-watched variant")
        return analyze_build(build, config=config)
    raise DttError(f"unknown build kind {kind!r} "
                   "(expected baseline, dtt, or dtt-watch)")


def analysis_summary(findings: Sequence[Finding]) -> Dict:
    """Aggregate counts for manifests and ``compare``."""
    codes: Dict[str, int] = {}
    errors = warnings = 0
    for finding in findings:
        codes[finding.code] = codes.get(finding.code, 0) + 1
        if finding.severity is Severity.ERROR:
            errors += 1
        else:
            warnings += 1
    return {
        "errors": errors,
        "warnings": warnings,
        "codes": {code: codes[code] for code in sorted(codes)},
    }


def summarize_workload(
    name: str,
    kind: str = "dtt",
    seed: Optional[int] = None,
    scale: Optional[int] = None,
    config: Optional[DttConfig] = None,
) -> Dict:
    """One manifest-ready summary row for a workload build."""
    findings = analyze_workload(name, kind=kind, seed=seed, scale=scale,
                                config=config)
    summary = analysis_summary(findings)
    summary["workload"] = name
    summary["kind"] = kind
    return summary
