"""The shared finding model for every static check (lint + analysis).

A :class:`Finding` is one diagnostic: a :class:`Severity`, a stable check
``code`` (the vocabulary the docs table and the baseline format share), an
optional program counter, a human message, and an optional ``detail``
string carrying machine-ish context (overlapping region names, thread
names).  ``repr`` is byte-compatible with the historical
``repro.isa.lint.Finding`` format — ``[severity] code at pc N: message`` —
so scripts that scrape linter output keep working.

Baselines (:class:`Baseline`) suppress *known* findings so a CI gate only
fails on new ones: a finding's :meth:`Finding.fingerprint` is
``code.v{version}@pc`` (optionally prefixed by the analyzed target's
name), and a baseline file is a JSON document listing accepted
fingerprints.  The ``version`` is the *check's* semantic version
(:data:`repro.analysis.checks.CHECK_VERSIONS`): when a check's meaning
changes, its version is bumped and every committed fingerprint for the
old semantics stops matching — the baseline invalidates loudly instead
of silently suppressing findings the check no longer even means.
"""

from __future__ import annotations

import json
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import DttError


class Severity(str, Enum):
    """How bad a finding is.

    ``ERROR`` findings will fault or mis-execute; ``WARNING`` findings are
    probably mistakes.  The ``str`` mixin keeps severities comparable to
    the historical string constants (``f.severity == "error"``).
    """

    ERROR = "error"
    WARNING = "warning"

    @property
    def rank(self) -> int:
        """Sort rank: errors first."""
        return 0 if self is Severity.ERROR else 1


#: historical module-level constants, kept importable everywhere
ERROR = Severity.ERROR
WARNING = Severity.WARNING


class Finding:
    """One static-check finding."""

    __slots__ = ("severity", "code", "pc", "message", "detail", "version")

    def __init__(self, severity, code: str, pc: Optional[int],
                 message: str, detail: str = "", version: int = 1):
        self.severity = Severity(severity)
        self.code = code
        self.pc = pc
        self.message = message
        self.detail = detail
        self.version = version

    def sort_key(self) -> Tuple:
        """Stable ordering: errors first, then pc, then code, then text."""
        return (self.severity.rank,
                self.pc if self.pc is not None else -1,
                self.code, self.message)

    def fingerprint(self, target: str = "") -> str:
        """Baseline identity: ``[target:]code.v{version}@pc`` (pc ``-``
        when absent).

        The message is deliberately excluded so rewording a diagnostic
        never invalidates a committed baseline; the pc is included so a
        *new* instance of a known code still fails the gate; the check
        version is included so a *semantics change* to a check
        invalidates every suppression written against the old meaning.
        """
        where = "-" if self.pc is None else str(self.pc)
        prefix = f"{target}:" if target else ""
        return f"{prefix}{self.code}.v{self.version}@{where}"

    def to_dict(self) -> Dict:
        """JSON-ready representation."""
        payload = {
            "severity": self.severity.value,
            "code": self.code,
            "pc": self.pc,
            "message": self.message,
        }
        if self.detail:
            payload["detail"] = self.detail
        if self.version != 1:
            payload["version"] = self.version
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "Finding":
        """Inverse of :meth:`to_dict`."""
        return cls(payload["severity"], payload["code"], payload.get("pc"),
                   payload.get("message", ""), payload.get("detail", ""),
                   payload.get("version", 1))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Finding):
            return NotImplemented
        return (self.severity is other.severity and self.code == other.code
                and self.pc == other.pc and self.message == other.message
                and self.detail == other.detail
                and self.version == other.version)

    def __hash__(self) -> int:
        return hash((self.severity, self.code, self.pc, self.message,
                     self.detail, self.version))

    def __repr__(self) -> str:
        where = f" at pc {self.pc}" if self.pc is not None else ""
        return f"[{self.severity.value}] {self.code}{where}: {self.message}"


def errors_only(findings: Iterable[Finding]) -> List[Finding]:
    """The subset of findings that will fault or mis-execute."""
    return [f for f in findings if f.severity is Severity.ERROR]


def findings_to_json(findings: Sequence[Finding], indent: int = 2) -> str:
    """Serialize a finding list as a JSON array."""
    return json.dumps([f.to_dict() for f in findings], indent=indent)


class Baseline:
    """A set of accepted finding fingerprints (the suppression file).

    File format (JSON)::

        {"version": 1, "suppress": ["mcf:dtt:dead-trigger.v1@12", ...]}
    """

    VERSION = 1

    def __init__(self, suppress: Iterable[str] = ()):
        self.suppress = set(suppress)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; raises :class:`~repro.errors.DttError`
        on malformed content (a broken baseline must not silently
        un-suppress everything — or suppress nothing)."""
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as error:
            raise DttError(f"cannot read baseline {path!r}: {error}")
        if (not isinstance(data, dict)
                or not isinstance(data.get("suppress"), list)
                or not all(isinstance(s, str) for s in data["suppress"])):
            raise DttError(
                f"baseline {path!r} is not a "
                '{"version": 1, "suppress": [...]} document'
            )
        return cls(data["suppress"])

    def to_json(self, indent: int = 2) -> str:
        """Serialize (fingerprints sorted, for stable diffs)."""
        return json.dumps(
            {"version": self.VERSION, "suppress": sorted(self.suppress)},
            indent=indent,
        ) + "\n"

    def save(self, path: str) -> None:
        """Write the baseline file atomically."""
        from repro.obs.ioutil import atomic_write_text

        atomic_write_text(path, self.to_json())

    def filter(self, findings: Sequence[Finding],
               target: str = "") -> Tuple[List[Finding], int]:
        """Split ``findings`` into (kept, suppressed-count)."""
        kept = [f for f in findings
                if f.fingerprint(target) not in self.suppress]
        return kept, len(findings) - len(kept)

    def add(self, findings: Sequence[Finding], target: str = "") -> None:
        """Accept every given finding's fingerprint."""
        self.suppress.update(f.fingerprint(target) for f in findings)

    def __len__(self) -> int:
        return len(self.suppress)

    def __repr__(self) -> str:
        return f"Baseline({len(self.suppress)} suppressed)"
