"""Control-flow graphs over finalized DTIR programs.

The machine's control transfer rules are simple — fallthrough, resolved
branch/jump targets, and a per-context call stack (``call`` pushes
``pc+1``, ``ret`` pops it) — but two of them need real modeling to
analyze precisely:

**Call/ret return sites.**  ``ret`` has no static target; its successors
are the *return sites* (``call_pc + 1``) of every call whose callee can
reach that ``ret``.  We compute, per call target, the set of ``ret`` pcs
reachable intra-procedurally (a nested ``call x`` is stepped *over* — to
its own return site — rather than into, so a shared subroutine's ``ret``
is never attributed to its caller's caller).  Whether stepping over a
nested call is legal depends on whether *its* target can return, so the
whole thing is a least fixpoint (:func:`call_return_map`): a call target
"can return" iff a ``ret`` is reachable from it assuming exactly the
already-proven set of returning callees.  A ``jmp`` into another function
is a tail call and *is* followed — the callee's ``ret`` then pops the
original return site, which is exactly what the machine does.

**Region slicing.**  The main program and each support-thread body are
separate execution regions sharing one instruction array (and possibly
subroutines).  :func:`slice_pcs` computes the pcs one entry can reach;
:class:`CFG` is always built over one such slice, so per-thread analysis
never conflates main-loop state with thread-body state.

:meth:`CFG.dominators` gives per-block dominator sets (iterative
dataflow), which the safety checks use to reason about "every path from
A passes B" questions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ProgramValidationError
from repro.isa.instructions import is_branch
from repro.isa.program import Program


def thread_regions(program: Program) -> Dict[str, range]:
    """Thread name -> PC range, from the ``thread:NAME`` function records
    the builder emits; threads authored without the builder fall back to
    an entry-only range."""
    regions: Dict[str, range] = {}
    for function in program.functions:
        if function.name.startswith("thread:"):
            regions[function.name[len("thread:"):]] = range(
                function.start, function.end
            )
    for name in program.threads:
        if name not in regions:
            entry = program.thread_entry_pc(name)
            regions[name] = range(entry, entry + 1)
    return regions


def _intraproc_rets(program: Program, entry: int,
                    can_return: Set[int]) -> Set[int]:
    """``ret`` pcs reachable from ``entry`` stepping *over* nested calls.

    A nested ``call x`` continues at its return site only when ``x`` is
    already proven returning; a ``jmp`` is followed unconditionally (tail
    calls hand their ``ret`` to the original caller, as the machine's
    call stack does).
    """
    instructions = program.instructions
    size = len(instructions)
    seen: Set[int] = set()
    rets: Set[int] = set()
    work = [entry]
    while work:
        pc = work.pop()
        if pc in seen or not 0 <= pc < size:
            continue
        seen.add(pc)
        instruction = instructions[pc]
        op = instruction.op
        if op == "ret":
            rets.add(pc)
            continue
        if op in ("halt", "treturn"):
            continue
        if op == "jmp":
            work.append(instruction.target)
            continue
        if op == "call":
            if instruction.target in can_return:
                work.append(pc + 1)
            continue
        if is_branch(op):
            work.append(instruction.target)
        work.append(pc + 1)
    return rets


def call_return_map(program: Program) -> Tuple[Set[int], Dict[int, Set[int]]]:
    """Least-fixpoint call/return analysis.

    Returns ``(can_return, ret_map)``: the set of call-target pcs from
    which a ``ret`` is reachable, and per call target the exact ``ret``
    pcs that return from it.  Starting from "nothing returns" and growing
    monotonically makes the result the least fixpoint — a call target is
    only proven returning by a realizable path, so a callee that loops
    forever (or ends in ``treturn``/``halt``) correctly never admits its
    fallthrough as reachable.
    """
    targets = {
        instruction.target
        for instruction in program.instructions
        if instruction.op == "call"
    }
    can_return: Set[int] = set()
    ret_map: Dict[int, Set[int]] = {target: set() for target in targets}
    changed = True
    while changed:
        changed = False
        for target in targets:
            rets = _intraproc_rets(program, target, can_return)
            if rets != ret_map[target]:
                ret_map[target] = rets
                changed = True
            if rets and target not in can_return:
                can_return.add(target)
                changed = True
    return can_return, ret_map


def successor_map(program: Program) -> Dict[int, Tuple[int, ...]]:
    """Per-pc control successors, with call/ret modeled precisely.

    * ``call`` continues at its target; the return site (``pc+1``) is a
      successor of the callee's ``ret`` instructions, not of the call;
    * ``ret`` continues at the return site of every call that can reach
      it (per :func:`call_return_map`);
    * ``halt``/``treturn`` have no successors.
    """
    can_return, ret_map = call_return_map(program)
    size = len(program.instructions)
    ret_sites: Dict[int, List[int]] = {}
    for pc, instruction in enumerate(program.instructions):
        if instruction.op == "call" and pc + 1 <= size - 1:
            for ret_pc in ret_map.get(instruction.target, ()):
                ret_sites.setdefault(ret_pc, []).append(pc + 1)
    successors: Dict[int, Tuple[int, ...]] = {}
    for pc, instruction in enumerate(program.instructions):
        op = instruction.op
        if op in ("halt", "treturn"):
            successors[pc] = ()
        elif op == "ret":
            successors[pc] = tuple(sorted(set(ret_sites.get(pc, ()))))
        elif op == "jmp":
            successors[pc] = (instruction.target,)
        elif op == "call":
            successors[pc] = (instruction.target,)
        elif is_branch(op):
            fall = pc + 1
            if instruction.target == fall:
                successors[pc] = (fall,) if fall < size else ()
            else:
                successors[pc] = tuple(
                    t for t in (instruction.target, fall) if t < size)
        else:
            successors[pc] = (pc + 1,) if pc + 1 < size else ()
    return successors


def slice_pcs(program: Program, entries: Iterable[int],
              successors: Optional[Dict[int, Tuple[int, ...]]] = None
              ) -> Set[int]:
    """PCs reachable from ``entries`` under :func:`successor_map`."""
    if successors is None:
        successors = successor_map(program)
    seen: Set[int] = set()
    work = list(entries)
    while work:
        pc = work.pop()
        if pc in seen or pc not in successors:
            continue
        seen.add(pc)
        work.extend(successors[pc])
    return seen


def reachable_pcs(program: Program) -> Set[int]:
    """PCs reachable from the entry point or any thread entry.

    The precise replacement for the linter's historical over-approximation:
    a call's fallthrough is live only via an actual ``ret`` of its callee,
    so code after a call to a never-returning subroutine is correctly
    reported dead.
    """
    entries = [program.entry_pc]
    entries.extend(program.thread_entry_pc(name) for name in program.threads)
    return slice_pcs(program, entries)


class BasicBlock:
    """One basic block: a maximal straight-line pc run within a slice."""

    __slots__ = ("index", "pcs", "succs", "preds")

    def __init__(self, index: int, pcs: List[int]):
        self.index = index
        self.pcs = pcs
        self.succs: List[int] = []
        self.preds: List[int] = []

    @property
    def start(self) -> int:
        return self.pcs[0]

    @property
    def end(self) -> int:
        """One past the last pc (half-open, like function records)."""
        return self.pcs[-1] + 1

    def __repr__(self) -> str:
        return (f"BasicBlock(#{self.index}, pc {self.start}..{self.end - 1}, "
                f"succs={self.succs})")


class CFG:
    """Basic-block control-flow graph over one execution region.

    Built from one entry pc over the pcs that entry can reach, so a
    support thread's body (or the main program) is analyzed in isolation
    even when regions share subroutines.
    """

    def __init__(self, program: Program, entry_pc: int):
        if not program.finalized:
            raise ProgramValidationError("CFG requires a finalized program")
        self.program = program
        self.entry_pc = entry_pc
        self.succ_pcs = successor_map(program)
        self.pcs = slice_pcs(program, [entry_pc], self.succ_pcs)
        self.blocks: List[BasicBlock] = []
        self.block_of: Dict[int, int] = {}
        self._build_blocks()
        self.entry = self.block_of[entry_pc]

    # -- construction ---------------------------------------------------------

    def _build_blocks(self) -> None:
        # a leader is the entry or the target of any non-fallthrough edge;
        # blocks additionally end at control-transfer instructions, which
        # _extend_block enforces, so fallthroughs after them need no entry
        # in the leader set
        leaders = {self.entry_pc}
        for pc in self.pcs:
            for succ in self.succ_pcs[pc]:
                if succ != pc + 1 and succ in self.pcs:
                    leaders.add(succ)
        for pc in sorted(self.pcs):
            if pc in self.block_of:
                continue
            block = BasicBlock(len(self.blocks), [pc])
            self.blocks.append(block)
            self.block_of[pc] = block.index
            self._extend_block(block, leaders)
        for block in self.blocks:
            last = block.pcs[-1]
            seen = set()
            for succ in self.succ_pcs[last]:
                if succ in self.block_of:
                    index = self.block_of[succ]
                    if index not in seen:
                        seen.add(index)
                        block.succs.append(index)
                        self.blocks[index].preds.append(block.index)

    def _extend_block(self, block: BasicBlock, leaders: Set[int]) -> None:
        instructions = self.program.instructions
        pc = block.pcs[0]
        while True:
            op = instructions[pc].op
            succs = self.succ_pcs[pc]
            if (op in ("halt", "treturn", "ret", "jmp", "call")
                    or is_branch(op)):
                return
            if len(succs) != 1 or succs[0] != pc + 1:
                return
            nxt = pc + 1
            if nxt in leaders or nxt not in self.pcs or nxt in self.block_of:
                return
            block.pcs.append(nxt)
            self.block_of[nxt] = block.index
            pc = nxt

    # -- queries --------------------------------------------------------------

    def block_at(self, pc: int) -> BasicBlock:
        """The block containing ``pc`` (must be in this region)."""
        return self.blocks[self.block_of[pc]]

    def dominators(self) -> List[Set[int]]:
        """Per-block dominator sets (block indices), iteratively.

        ``dom(entry) = {entry}``; every other block starts at "all
        blocks" and shrinks to ``{b} ∪ ⋂ dom(preds)`` until fixed.
        """
        count = len(self.blocks)
        everything = set(range(count))
        dom: List[Set[int]] = [set(everything) for _ in range(count)]
        dom[self.entry] = {self.entry}
        changed = True
        while changed:
            changed = False
            for block in self.blocks:
                if block.index == self.entry:
                    continue
                preds = [dom[p] for p in block.preds]
                new = set.intersection(*preds) if preds else set()
                new.add(block.index)
                if new != dom[block.index]:
                    dom[block.index] = new
                    changed = True
        return dom

    def instruction_at(self, pc: int):
        """Return the decoded instruction stored at ``pc``."""
        return self.program.instructions[pc]

    def __len__(self) -> int:
        return len(self.blocks)

    def __repr__(self) -> str:
        return (f"CFG(entry pc {self.entry_pc}, {len(self.blocks)} blocks, "
                f"{len(self.pcs)} pcs)")


def main_cfg(program: Program) -> CFG:
    """The CFG of the main execution region (from the entry label)."""
    return CFG(program, program.entry_pc)


def thread_cfg(program: Program, name: str) -> CFG:
    """The CFG of one support thread's body (from its entry label)."""
    return CFG(program, program.thread_entry_pc(name))
