"""Symbolic affine analysis: addresses as expressions over parameters.

The concrete lattice of :mod:`repro.analysis.dataflow` names addresses as
constants or data regions.  That is enough for hand-shaped conversions
whose thread bodies address memory as ``la base; ld v, base, k`` — but the
paper's vpr/twolf conversions pass a *parameter* (the channel / cell id)
into the thread through the trigger-argument register r1, and every
address in the body is then ``base + (r1 - feeder_base)``: a different
concrete address per trigger.  The concrete lattice can only widen those
to whole regions; this module tracks them exactly.

**The domain.**  An :class:`Affine` value is ``const + Σ cᵢ·tᵢ`` over
opaque *terms*: thread parameters ``("param", reg)`` (the trigger
registers r1–r3 at thread entry), segment-entry register values
``("entry", reg)``, and load value numbers ``("load", pc)``.  The domain
is a flat lattice — two unequal expressions meet to unknown (``None``) —
and every operation outside the affine fragment (multiplication of two
non-constants, division, comparisons, loads inside a loop) *widens to
the concrete lattice*: the symbolic side reports "unknown" and callers
fall back to the :class:`~repro.analysis.dataflow.AddressSet` the
concrete :class:`~repro.analysis.dataflow.ValueAnalysis` computed for the
same access.  The symbolic pass therefore only ever *refines* concrete
verdicts; it cannot report less than the concrete analysis knows.

**Three consumers.**

* :class:`SymbolicValues` — a worklist dataflow (same
  :func:`~repro.analysis.dataflow.solve` driver) over a support-thread
  CFG with r1 seeded as ``param(1)``; :func:`symbolic_access_map` names
  each memory access's address as an affine expression in r1 where one
  exists.  ``checks.py`` uses it to evaluate race windows for *all*
  parameter instantiations (:func:`overlap_verdict`).
* :func:`prove_param_recovery` — the parameterized region-closure proof
  for ``autoconvert``: symbolically executes the straight-line feeder
  segment ahead of a candidate region (with load value numbering and
  region-disjointness store kills) and proves that each parameter the
  region reads equals ``feeder_address - K`` for a constant ``K`` per
  feeder, i.e. is recoverable from r1 inside the thread.  The resulting
  :class:`ParamRecovery` is the synthesis plan for the thread prologue.
* :func:`symbolic_report` — the per-region facts ``dtt-harness analyze
  --json`` surfaces.

The in-bounds indexing assumption of the concrete lattice carries over:
an expression whose constant part falls inside a data region is assumed
to stay inside that region (:func:`affine_region`) — the same contract
the builder's ``for_range`` idiom guarantees for every bundled workload.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.cfg import CFG, BasicBlock
from repro.analysis.dataflow import (DataflowAnalysis, _fold_constant,
                                     region_containing, solve)
from repro.isa.instructions import is_load, is_store, operand_roles
from repro.isa.registers import (NUM_REGISTERS, TRIGGER_ADDR_REG,
                                 TRIGGER_OLD_VALUE_REG, TRIGGER_VALUE_REG)

#: the thread-argument registers a support thread may parameterize over
PARAM_REGS = (TRIGGER_ADDR_REG, TRIGGER_VALUE_REG, TRIGGER_OLD_VALUE_REG)


class Affine:
    """An immutable affine expression ``const + Σ coeff·term``.

    Terms are opaque hashable tuples; ``terms`` is stored sorted so two
    equal expressions compare and hash equal.  The zero-term expression
    is a known constant.
    """

    __slots__ = ("const", "terms")

    def __init__(self, const=0, terms: Sequence[Tuple[Tuple, int]] = ()):
        self.const = const
        self.terms = tuple(sorted((t, c) for t, c in terms if c != 0))

    @classmethod
    def constant(cls, value) -> "Affine":
        return cls(value)

    @classmethod
    def term(cls, term: Tuple, coeff: int = 1) -> "Affine":
        return cls(0, [(term, coeff)])

    @property
    def is_const(self) -> bool:
        return not self.terms

    def add(self, other: "Affine") -> "Affine":
        """Termwise sum of two affine expressions."""
        merged = dict(self.terms)
        for term, coeff in other.terms:
            merged[term] = merged.get(term, 0) + coeff
        return Affine(self.const + other.const, merged.items())

    def sub(self, other: "Affine") -> "Affine":
        """Termwise difference of two affine expressions."""
        merged = dict(self.terms)
        for term, coeff in other.terms:
            merged[term] = merged.get(term, 0) - coeff
        return Affine(self.const - other.const, merged.items())

    def scale(self, factor) -> "Affine":
        """Multiply every coefficient and the constant by ``factor``."""
        return Affine(self.const * factor,
                      [(t, c * factor) for t, c in self.terms])

    def diff_const(self, other: "Affine") -> Optional[int]:
        """``self - other`` when that difference is a constant, else None."""
        delta = self.sub(other)
        return delta.const if delta.is_const else None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Affine):
            return NotImplemented
        return self.const == other.const and self.terms == other.terms

    def __hash__(self) -> int:
        return hash((self.const, self.terms))

    def describe(self) -> str:
        """Human form, e.g. ``r1 - 272`` or ``64 + L47``."""
        parts = []
        for term, coeff in self.terms:
            kind, which = term
            name = {"param": f"r{which}", "entry": f"R{which}",
                    "load": f"L{which}"}[kind]
            if coeff == 1:
                parts.append(f"+ {name}")
            elif coeff == -1:
                parts.append(f"- {name}")
            else:
                parts.append(f"+ {coeff}*{name}")
        if self.const or not parts:
            parts.append(f"+ {self.const}" if self.const >= 0
                         else f"- {-self.const}")
        text = " ".join(parts)
        return text[2:] if text.startswith("+ ") else "-" + text[2:]

    def __repr__(self) -> str:
        return f"Affine({self.describe()})"


def affine_region(expr: Affine, layout) -> Optional[str]:
    """The data region an address expression stays inside, if decidable.

    Inherits the concrete lattice's in-bounds assumption: the region
    containing the constant part bounds the whole expression.  A pure
    constant resolves exactly; an expression whose constant part lies in
    no region is unbounded (None).
    """
    return region_containing(expr.const, layout)


# ---------------------------------------------------------------------------
# the affine transfer function
# ---------------------------------------------------------------------------

#: ops the affine domain models exactly (beyond full constant folding)
_AFFINE_OPS = frozenset(["add", "addi", "sub", "subi", "mul", "muli",
                         "li", "mov"])


def step_affine(instruction, env: Dict[int, Optional[Affine]],
                load_value=None) -> None:
    """Abstractly execute one instruction over an affine environment.

    ``env`` maps register -> Affine or None (unknown); unknown is the
    widening point — callers consult the concrete lattice for anything
    the affine fragment cannot express.  ``load_value`` (if given) maps a
    load instruction to its value expression (the segment executor's
    value numbering); without it every load widens to unknown.
    """
    op = instruction.op
    dest, sources = operand_roles(op)
    if dest is None:
        return
    dest_reg = getattr(instruction, dest)
    if op == "li":
        env[dest_reg] = (Affine.constant(instruction.b)
                         if isinstance(instruction.b, int) else None)
        return
    if op == "mov":
        env[dest_reg] = env[instruction.b]
        return
    if is_load(op):
        env[dest_reg] = load_value(instruction) if load_value else None
        return
    values = [env[getattr(instruction, slot)] for slot in sources]
    if instruction.info.signature.endswith("I"):
        values.append(Affine.constant(instruction.c)
                      if isinstance(instruction.c, int) else None)
    if any(v is None for v in values):
        env[dest_reg] = None
        return
    if all(v.is_const for v in values):
        folded = _fold_constant(op, [v.const for v in values])
        env[dest_reg] = (Affine.constant(folded)
                         if isinstance(folded, int) else None)
        return
    if op in ("add", "addi") and len(values) == 2:
        env[dest_reg] = values[0].add(values[1])
    elif op in ("sub", "subi") and len(values) == 2:
        env[dest_reg] = values[0].sub(values[1])
    elif op in ("mul", "muli") and len(values) == 2:
        left, right = values
        if right.is_const:
            env[dest_reg] = left.scale(right.const)
        elif left.is_const:
            env[dest_reg] = right.scale(left.const)
        else:
            env[dest_reg] = None  # widen: bilinear, not affine
    else:
        env[dest_reg] = None  # widen: outside the affine fragment


def access_affine(instruction,
                  env: Dict[int, Optional[Affine]]) -> Optional[Affine]:
    """The affine address of one memory access, or None (widen)."""
    op = instruction.op
    base = env.get(instruction.b)
    if base is None:
        return None
    if op in ("ld", "st", "tst"):
        if not isinstance(instruction.c, int):
            return None
        return base.add(Affine.constant(instruction.c))
    offset = env.get(instruction.c)
    if offset is None:
        return None
    return base.add(offset)


# ---------------------------------------------------------------------------
# symbolic dataflow over a thread body
# ---------------------------------------------------------------------------


class SymbolicValues(DataflowAnalysis):
    """Affine register values over one region's CFG (forward, flat meet).

    Environments map register -> Affine or None; the meet keeps equal
    expressions and widens everything else to None, so the fixpoint is
    finite (an expression either survives every join or collapses).
    Loads widen: inside a loop the same pc reloads different values, and
    claiming a single symbol for all iterations would be unsound.
    """

    direction = "forward"

    def __init__(self, cfg: CFG, entry_env: Dict[int, Optional[Affine]]):
        self.cfg = cfg
        self.entry_env = dict(entry_env)
        self.ins, self.outs = solve(cfg, self)

    def boundary_state(self):
        return dict(self.entry_env)

    def meet(self, a, b):
        return {reg: (a[reg] if a[reg] == b.get(reg) else None) for reg in a}

    def transfer(self, block: BasicBlock, state):
        env = dict(state)
        for pc in block.pcs:
            step_affine(self.cfg.instruction_at(pc), env)
        return env

    def env_at(self, pc: int) -> Dict[int, Optional[Affine]]:
        """The affine register file just before ``pc`` executes."""
        block = self.cfg.block_at(pc)
        state = self.ins[block.index]
        env = dict(state) if state is not None else dict(self.entry_env)
        for earlier in block.pcs:
            if earlier == pc:
                break
            step_affine(self.cfg.instruction_at(earlier), env)
        return env


def thread_entry_env(param_regs: Sequence[int] = PARAM_REGS,
                     ) -> Dict[int, Optional[Affine]]:
    """Thread-entry affine environment: parameters symbolic, rest unknown
    (support contexts hold stale values from earlier activations)."""
    env: Dict[int, Optional[Affine]] = {
        reg: None for reg in range(NUM_REGISTERS)}
    for reg in param_regs:
        env[reg] = Affine.term(("param", reg))
    return env


def symbolic_access_map(values: SymbolicValues
                        ) -> Dict[int, Optional[Affine]]:
    """pc -> affine address for every memory access in the region.

    Only expressions over ``param`` terms are kept: an address involving
    an ``entry``/``load`` symbol is not a function of the trigger
    arguments alone, so the caller must widen to the concrete set.
    """
    addresses: Dict[int, Optional[Affine]] = {}
    for pc in sorted(values.cfg.pcs):
        instruction = values.cfg.instruction_at(pc)
        if not (is_load(instruction.op) or is_store(instruction.op)):
            continue
        expr = access_affine(instruction, values.env_at(pc))
        if expr is not None and any(t[0] != "param" for t, _c in expr.terms):
            expr = None
        addresses[pc] = expr
    return addresses


# ---------------------------------------------------------------------------
# the symbolic overlap algebra
# ---------------------------------------------------------------------------

#: verdicts of :func:`overlap_verdict`
NONE, SOME, ALL, UNKNOWN = "none", "some", "all", "unknown"


def _merge_ranges(ranges: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    merged: List[Tuple[int, int]] = []
    for lo, hi in sorted(ranges):
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def _covered(piece: Tuple[int, int],
             merged: Sequence[Tuple[int, int]]) -> bool:
    lo, hi = piece
    return any(mlo <= lo and hi <= mhi for mlo, mhi in merged)


def _intersects(piece: Tuple[int, int],
                ranges: Sequence[Tuple[int, int]]) -> bool:
    lo, hi = piece
    return any(lo < rhi and rlo < hi for rlo, rhi in ranges)


def overlap_verdict(expr: Affine, feasible: Sequence[Tuple[int, int]],
                    targets: Sequence[Tuple[int, int]]) -> str:
    """Does ``expr`` (an address affine in r1) hit ``targets`` for all,
    some, or none of the feasible trigger addresses?

    ``feasible`` is the half-open word ranges r1 can take (from the
    spec's store sites or watch ranges); ``targets`` the half-open word
    ranges of the concrete access being compared against.  Exact for
    coefficient 0/±1 (every bundled conversion); other coefficients use
    the interval hull, which can return ``some`` for a stride that
    actually misses — sound, since ``some``/``unknown`` only ever adds a
    finding.  ``unknown`` when the expression involves parameters other
    than r1 (r2/r3 carry data values with no feasible range).
    """
    if not targets:
        return NONE
    if not feasible and not expr.is_const:
        return UNKNOWN
    coeff = 0
    for term, c in expr.terms:
        if term == ("param", TRIGGER_ADDR_REG):
            coeff = c
        else:
            return UNKNOWN
    merged_targets = _merge_ranges(targets)
    if coeff == 0:
        point = (expr.const, expr.const + 1)
        return ALL if _covered(point, merged_targets) else NONE
    pieces: List[Tuple[int, int]] = []
    for lo, hi in feasible:
        if coeff == 1:
            pieces.append((expr.const + lo, expr.const + hi))
        elif coeff == -1:
            pieces.append((expr.const - hi + 1, expr.const - lo + 1))
        else:
            ends = (expr.const + coeff * lo, expr.const + coeff * (hi - 1))
            pieces.append((min(ends), max(ends) + 1))
    exact = coeff in (1, -1)
    any_hit = any(_intersects(p, merged_targets) for p in pieces)
    if not any_hit:
        return NONE
    if exact and all(_covered(p, merged_targets) for p in pieces):
        return ALL
    if not exact and all(hi - lo == 1 and _covered((lo, hi), merged_targets)
                         for lo, hi in pieces):
        return ALL  # degenerate single-point feasible set
    return SOME


# ---------------------------------------------------------------------------
# parameterized region closure: the feeder-segment proof
# ---------------------------------------------------------------------------


class ParamRecovery:
    """How a synthesized thread recovers each region parameter from r1.

    ``plans`` maps parameter register -> one of:

    * ``("const", value)`` — the parameter is a known constant at region
      entry (e.g. a base pointer materialized just before the region);
    * ``("cases", [(region_lo, region_hi, delta), ...])`` — the
      parameter equals ``r1 - delta`` whenever r1 falls in the feeder
      region ``[region_lo, region_hi)``; a single case needs no
      classification, multiple cases branch on r1 (the twolf x/y shape).
      Cases are sorted by descending ``region_lo`` so synthesis can emit
      a ``sge`` chain.
    """

    __slots__ = ("plans",)

    def __init__(self, plans: Dict[int, Tuple]):
        self.plans = dict(plans)

    def as_dict(self) -> Dict:
        """JSON-ready view of the per-register recovery plans."""
        rows = {}
        for reg, plan in sorted(self.plans.items()):
            if plan[0] == "const":
                rows[f"r{reg}"] = {"kind": "const", "value": plan[1]}
            else:
                rows[f"r{reg}"] = {"kind": "cases", "cases": [
                    {"lo": lo, "hi": hi, "delta": delta}
                    for lo, hi, delta in plan[1]]}
        return rows

    def __repr__(self) -> str:
        return f"ParamRecovery({self.as_dict()})"


def segment_start(cfg: CFG, region_start: int) -> int:
    """The earliest pc of the straight-line segment falling into
    ``region_start``: walk predecessors while each pc's only predecessor
    is the preceding pc (no joins, no calls — symbolic execution of the
    segment then covers every path that reaches the region)."""
    preds: Dict[int, set] = {pc: set() for pc in cfg.pcs}
    for pc, succs in cfg.succ_pcs.items():
        for succ in succs:
            if succ in preds:
                preds[succ].add(pc)
    start = region_start
    while (start - 1 in cfg.pcs
           and preds.get(start) == {start - 1}
           and cfg.instruction_at(start - 1).op not in ("call", "ret")):
        start -= 1
    return start


def run_segment(program, cfg: CFG, seg_start: int, region_start: int
                ) -> Tuple[Dict[int, Optional[Affine]], Dict[int, Affine]]:
    """Symbolically execute the straight-line segment
    ``[seg_start, region_start)``.

    Returns ``(env, store_addrs)``: the affine register file at region
    entry (over ``entry``/``load`` symbols) and the affine address of
    every store in the segment.  Loads are value-numbered — two loads of
    the same affine address with no intervening may-alias store share a
    symbol (this is what proves vpr's re-loaded channel index equals the
    one the feeder's address was computed from).  A store kills every
    memoized location it may alias; provably different data regions
    (:func:`affine_region`) survive.
    """
    layout = program.layout
    env: Dict[int, Optional[Affine]] = {
        reg: Affine.term(("entry", reg)) for reg in range(NUM_REGISTERS)}
    memory: Dict[Affine, Affine] = {}
    store_addrs: Dict[int, Affine] = {}
    for pc in range(seg_start, region_start):
        instruction = program.instructions[pc]
        op = instruction.op
        if is_store(op):
            addr = access_affine(instruction, env)
            if addr is None:
                memory.clear()  # may alias anything
                continue
            store_addrs[pc] = addr
            store_region = affine_region(addr, layout)
            for known in list(memory):
                if known == addr:
                    continue
                known_region = affine_region(known, layout)
                if (store_region is None or known_region is None
                        or known_region == store_region):
                    del memory[known]
            value = env.get(instruction.a)
            if value is not None:
                memory[addr] = value
            else:
                memory.pop(addr, None)
        elif is_load(op):
            addr = access_affine(instruction, env)
            if addr is None:
                env[instruction.a] = Affine.term(("load", pc))
                continue
            if addr not in memory:
                memory[addr] = Affine.term(("load", pc))
            env[instruction.a] = memory[addr]
        else:
            step_affine(instruction, env)
    return env, store_addrs


def prove_param_recovery(program, cfg: CFG, region_start: int,
                         params: Sequence[int], feeder_pcs: Sequence[int],
                         ) -> Optional[ParamRecovery]:
    """Prove each region parameter recoverable from the trigger address.

    For every feeder store f and every parameter p the proof obligation
    is ``address(f) - value(p at region entry) == constant`` in the
    affine algebra of the shared feeder segment — then a thread
    triggered by f can recompute p as ``r1 - constant``.  When feeders
    resolve to different constants they must live in pairwise-disjoint
    data regions, so the thread can classify r1 by range (twolf's x/y
    bases).  Returns None when any obligation fails: the candidate is
    not parameter-closed and discovery must drop it.
    """
    layout = program.layout
    seg_start = segment_start(cfg, region_start)
    if any(not seg_start <= pc < region_start for pc in feeder_pcs):
        return None  # a feeder outside the segment: no shared algebra
    env, store_addrs = run_segment(program, cfg, seg_start, region_start)
    plans: Dict[int, Tuple] = {}
    for param in params:
        value = env.get(param)
        if value is None:
            return None
        if value.is_const:
            plans[param] = ("const", value.const)
            continue
        cases: List[Tuple[int, int, int]] = []
        for pc in feeder_pcs:
            addr = store_addrs.get(pc)
            if addr is None:
                return None
            delta = addr.diff_const(value)
            if delta is None or not isinstance(delta, int):
                return None
            region = affine_region(addr, layout)
            if region is None:
                return None
            base, size = layout[region]
            cases.append((base, base + max(size, 1), delta))
        unique = sorted(set(cases), reverse=True)
        if len({delta for _lo, _hi, delta in unique}) != len(unique):
            return None  # one region, two deltas: r1 cannot disambiguate
        for (alo, ahi, _d1), (blo, bhi, _d2) in zip(unique, unique[1:]):
            if blo < ahi and alo < bhi:
                return None  # overlapping feeder regions: ambiguous
        plans[param] = ("cases", unique)
    return ParamRecovery(plans)


# ---------------------------------------------------------------------------
# analyze --json surface
# ---------------------------------------------------------------------------


def symbolic_report(program, specs) -> List[Dict]:
    """Per-thread symbolic facts for ``dtt-harness analyze --json``.

    One row per registered support thread: which trigger registers its
    addresses are affine in, and per memory access the affine form (or
    the widening reason).  Drives no verdicts — this is the observability
    surface over the same machinery the checks use.
    """
    from repro.analysis import cfg as cfgmod

    rows: List[Dict] = []
    seen = set()
    for spec in specs:
        if spec.thread in seen or spec.thread not in program.threads:
            continue
        seen.add(spec.thread)
        tcfg = cfgmod.thread_cfg(program, spec.thread)
        values = SymbolicValues(tcfg, thread_entry_env())
        accesses = symbolic_access_map(values)
        params = set()
        access_rows = []
        for pc in sorted(accesses):
            expr = accesses[pc]
            instruction = tcfg.instruction_at(pc)
            row = {"pc": pc,
                   "kind": "read" if is_load(instruction.op) else "write"}
            if expr is None:
                row["address"] = None
            else:
                row["address"] = expr.describe()
                params.update(which for (kind, which), _c in expr.terms
                              if kind == "param")
            access_rows.append(row)
        rows.append({
            "thread": spec.thread,
            "params": sorted(f"r{reg}" for reg in params),
            "resolved": sum(1 for r in access_rows
                            if r["address"] is not None),
            "accesses": access_rows,
        })
    return rows
