"""Generic dataflow over :class:`~repro.analysis.cfg.CFG`, plus the stock
analyses the safety checks build on.

**Solver** (:func:`solve`).  A classic worklist fixpoint over basic
blocks.  An analysis declares a direction, a boundary state (at the
region entry for forward analyses, at the exit blocks for backward
ones), a meet, and a block transfer; states are ordinary immutable-ish
Python values compared with ``==``.  ``None`` is the universal bottom
("unreached") and meets as identity, so optimistic initialization needs
no per-analysis top element.

**Stock analyses.**

* :class:`ReachingDefinitions` — forward, may.  Maps each register to
  the set of pcs that may have defined it; the pseudo-pcs
  :data:`ENTRY_DEF` (defined at region entry) and :data:`UNDEF` (never
  defined on some path) make definedness questions direct — a use whose
  reaching set contains :data:`UNDEF` is a maybe-uninitialized read.
* :class:`Liveness` — backward, may.  Registers whose current value may
  still be read.
* :class:`ValueAnalysis` — forward constant/address propagation over the
  ISA's ``base+offset`` addressing.  The value lattice is ⊥ → constants
  / region-sets → ⊤, where a *region* is a named static-data array from
  the program layout.  ``la`` materializes as a constant absolute
  address (finalize patches the symbol), indexed addressing
  (``ldx``/``stx``/``tstx``) and pointer arithmetic against an unknown
  index widen a constant base to the region containing it.  That
  widening carries the framework's one documented assumption: an index
  added to an array base stays inside that array (the builder's
  ``for_range`` idiom guarantees it for every bundled workload; a truly
  wild index would need ⊤, which the checks treat as
  "overlaps everything" anyway, erring loud rather than silent).

:func:`access_summary` folds a region's :class:`ValueAnalysis` into
per-instruction abstract :class:`AddressSet`\\ s — the may-read /
may-write / may-trigger address sets the DTT safety checks intersect.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.cfg import CFG, BasicBlock
from repro.isa.instructions import (is_load, is_store, is_triggering_store,
                                    operand_roles)
from repro.isa.registers import NUM_REGISTERS

#: pseudo-definition pc: "defined at region entry" (trigger registers, or
#: the architecturally zeroed main-context file)
ENTRY_DEF = -1
#: pseudo-definition pc: "not defined on some path into this point"
UNDEF = -2


class DataflowAnalysis:
    """Interface a dataflow problem implements for :func:`solve`."""

    #: "forward" or "backward"
    direction = "forward"

    def boundary_state(self):
        """State at the region entry (forward) / region exits (backward)."""
        raise NotImplementedError

    def meet(self, a, b):
        """Combine two states at a join point."""
        raise NotImplementedError

    def transfer(self, block: BasicBlock, state):
        """State after ``block`` given the state before it (must not
        mutate ``state``)."""
        raise NotImplementedError


def solve(cfg: CFG, analysis: DataflowAnalysis) -> Tuple[List, List]:
    """Run ``analysis`` to fixpoint; returns ``(ins, outs)`` per block.

    ``ins[b]`` is the state at block b's start, ``outs[b]`` at its end,
    in *program* order regardless of analysis direction.  Unreached
    blocks keep ``None``.
    """
    forward = analysis.direction == "forward"
    count = len(cfg.blocks)
    ins: List = [None] * count
    outs: List = [None] * count
    work = deque(cfg.blocks)
    while work:
        block = work.popleft()
        if forward:
            state = analysis.boundary_state() if block.index == cfg.entry \
                else None
            for pred in block.preds:
                if outs[pred] is not None:
                    state = outs[pred] if state is None \
                        else analysis.meet(state, outs[pred])
            if state is None:
                continue
            ins[block.index] = state
            new = analysis.transfer(block, state)
            if new != outs[block.index]:
                outs[block.index] = new
                for succ in block.succs:
                    work.append(cfg.blocks[succ])
        else:
            state = analysis.boundary_state() if not block.succs else None
            for succ in block.succs:
                if ins[succ] is not None:
                    state = ins[succ] if state is None \
                        else analysis.meet(state, ins[succ])
            if state is None:
                continue
            outs[block.index] = state
            new = analysis.transfer(block, state)
            if new != ins[block.index]:
                ins[block.index] = new
                for pred in block.preds:
                    work.append(cfg.blocks[pred])
    return ins, outs


# ---------------------------------------------------------------------------
# reaching definitions
# ---------------------------------------------------------------------------


class ReachingDefinitions(DataflowAnalysis):
    """Register -> set of defining pcs (may); see module docstring."""

    direction = "forward"

    def __init__(self, cfg: CFG, entry_regs: Sequence[int] = ()):
        self.cfg = cfg
        self.entry_regs = frozenset(entry_regs)
        self.ins, self.outs = solve(cfg, self)

    def boundary_state(self) -> Dict[int, FrozenSet[int]]:
        return {
            reg: frozenset([ENTRY_DEF if reg in self.entry_regs else UNDEF])
            for reg in range(NUM_REGISTERS)
        }

    def meet(self, a, b):
        merged = dict(a)
        for reg, defs in b.items():
            merged[reg] = merged.get(reg, frozenset()) | defs
        return merged

    def transfer(self, block: BasicBlock, state):
        state = dict(state)
        for pc in block.pcs:
            dest = _dest_reg(self.cfg.instruction_at(pc))
            if dest is not None:
                state[dest] = frozenset([pc])
        return state

    def defs_at(self, pc: int) -> Dict[int, FrozenSet[int]]:
        """The reaching-definition map just *before* executing ``pc``."""
        block = self.cfg.block_at(pc)
        state = self.ins[block.index]
        state = dict(state) if state is not None else self.boundary_state()
        for earlier in block.pcs:
            if earlier == pc:
                break
            dest = _dest_reg(self.cfg.instruction_at(earlier))
            if dest is not None:
                state[dest] = frozenset([earlier])
        return state


class Liveness(DataflowAnalysis):
    """Registers whose current value may still be read (backward, may)."""

    direction = "backward"

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.ins, self.outs = solve(cfg, self)

    def boundary_state(self) -> FrozenSet[int]:
        return frozenset()

    def meet(self, a, b):
        return a | b

    def transfer(self, block: BasicBlock, state):
        live = set(state)
        for pc in reversed(block.pcs):
            instruction = self.cfg.instruction_at(pc)
            dest, sources = operand_roles(instruction.op)
            if dest is not None:
                live.discard(getattr(instruction, dest))
            for slot in sources:
                live.add(getattr(instruction, slot))
        return frozenset(live)

    def live_into(self, pc: int) -> FrozenSet[int]:
        """Registers live just before ``pc`` executes."""
        block = self.cfg.block_at(pc)
        live = set(self.outs[block.index] or frozenset())
        for later in reversed(block.pcs):
            if later < pc:
                break
            instruction = self.cfg.instruction_at(later)
            dest, sources = operand_roles(instruction.op)
            if dest is not None:
                live.discard(getattr(instruction, dest))
            for slot in sources:
                live.add(getattr(instruction, slot))
            if later == pc:
                break
        return frozenset(live)


def _dest_reg(instruction) -> Optional[int]:
    dest, _sources = operand_roles(instruction.op)
    return getattr(instruction, dest) if dest is not None else None


# ---------------------------------------------------------------------------
# constant / address propagation
# ---------------------------------------------------------------------------

_CONST = "const"
_REGION = "region"
_TOP = "top"


class Value:
    """One abstract register value: a constant, a set of data regions the
    value points into, or ⊤ (anything)."""

    __slots__ = ("kind", "const", "regions")

    def __init__(self, kind: str, const=None,
                 regions: FrozenSet[str] = frozenset()):
        self.kind = kind
        self.const = const
        self.regions = regions

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Value):
            return NotImplemented
        return (self.kind == other.kind and self.const == other.const
                and self.regions == other.regions)

    def __hash__(self) -> int:
        return hash((self.kind, self.const, self.regions))

    def __repr__(self) -> str:
        if self.kind == _CONST:
            return f"Value({self.const})"
        if self.kind == _REGION:
            return f"Value(in {'|'.join(sorted(self.regions))})"
        return "Value(top)"


TOP = Value(_TOP)


def const_value(number) -> Value:
    """A known constant."""
    return Value(_CONST, const=number)


def region_value(names) -> Value:
    """A pointer somewhere inside the named data regions."""
    names = frozenset(names)
    return Value(_REGION, regions=names) if names else TOP


def region_containing(address, layout: Dict[str, Tuple[int, int]]
                      ) -> Optional[str]:
    """The data symbol whose placement covers ``address``, if any."""
    if not isinstance(address, int):
        return None
    for name, (base, size) in layout.items():
        if base <= address < base + max(size, 1):
            return name
    return None


def meet_values(a: Value, b: Value) -> Value:
    """Join two abstract values at a control-flow merge.

    Equal values survive; distinct constants inside one data region
    widen to that region; anything else collapses to TOP.
    """
    if a == b:
        return a
    if a.kind == _TOP or b.kind == _TOP:
        return TOP
    if a.kind == _REGION and b.kind == _REGION:
        return region_value(a.regions | b.regions)
    return TOP  # const vs other const / const vs region


class AddressSet:
    """Abstract set of word addresses one memory access may touch."""

    __slots__ = ("exact", "regions", "top")

    def __init__(self, exact=(), regions=(), top: bool = False):
        self.exact = frozenset(exact)
        self.regions = frozenset(regions)
        self.top = top

    @classmethod
    def anywhere(cls) -> "AddressSet":
        return cls(top=True)

    def is_empty(self) -> bool:
        """True when the set provably contains no addresses at all."""
        return not self.top and not self.exact and not self.regions

    def _ranges(self, layout) -> List[Tuple[int, int]]:
        ranges = [(addr, addr + 1) for addr in self.exact]
        for name in self.regions:
            base, size = layout[name]
            ranges.append((base, base + max(size, 1)))
        return ranges

    def overlaps(self, other: "AddressSet", layout) -> bool:
        """May these two access sets touch a common word?"""
        if self.is_empty() or other.is_empty():
            return False
        if self.top or other.top:
            return True
        return self.intersects_ranges(other._ranges(layout), layout)

    def intersects_ranges(self, ranges: Sequence[Tuple[int, int]],
                          layout) -> bool:
        """May this set touch any of the half-open word ranges?"""
        if self.is_empty() or not ranges:
            return False
        if self.top:
            return True
        for lo, hi in self._ranges(layout):
            for rlo, rhi in ranges:
                if lo < rhi and rlo < hi:
                    return True
        return False

    def describe(self, layout) -> str:
        """Human name: symbols for regions, symbol+offset for exacts."""
        if self.top:
            return "any address"
        parts = []
        for name in sorted(self.regions):
            parts.append(f"{name}[*]")
        for addr in sorted(self.exact):
            name = region_containing(addr, layout)
            if name is not None:
                parts.append(f"{name}[{addr - layout[name][0]}]")
            else:
                parts.append(str(addr))
        return "|".join(parts) if parts else "nothing"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AddressSet):
            return NotImplemented
        return (self.exact == other.exact and self.regions == other.regions
                and self.top == other.top)

    def __hash__(self) -> int:
        return hash((self.exact, self.regions, self.top))

    def __repr__(self) -> str:
        if self.top:
            return "AddressSet(top)"
        return (f"AddressSet(exact={sorted(self.exact)}, "
                f"regions={sorted(self.regions)})")


def value_to_addresses(value: Value, layout) -> AddressSet:
    """The address set a pointer-valued register may name."""
    if value.kind == _CONST:
        return (AddressSet(exact=[value.const])
                if isinstance(value.const, int) else AddressSet.anywhere())
    if value.kind == _REGION:
        return AddressSet(regions=value.regions)
    return AddressSet.anywhere()


class ValueAnalysis(DataflowAnalysis):
    """Constant/address propagation over one region's CFG.

    ``entry_env`` fixes the abstract register file at region entry —
    all-zero constants for the main region (contexts reset to zeroed
    registers), ⊤ for support-thread bodies (support contexts retain
    stale values from earlier activations), with the trigger-address
    register optionally seeded to the trigger's possible regions.
    """

    direction = "forward"

    def __init__(self, cfg: CFG, entry_env: Dict[int, Value]):
        self.cfg = cfg
        self.layout = cfg.program.layout
        self.entry_env = dict(entry_env)
        self.ins, self.outs = solve(cfg, self)

    def boundary_state(self):
        return dict(self.entry_env)

    def meet(self, a, b):
        return {reg: meet_values(a[reg], b[reg]) for reg in a}

    def transfer(self, block: BasicBlock, state):
        env = dict(state)
        for pc in block.pcs:
            self._step(self.cfg.instruction_at(pc), env)
        return env

    def env_at(self, pc: int) -> Dict[int, Value]:
        """The abstract register file just before ``pc`` executes."""
        block = self.cfg.block_at(pc)
        state = self.ins[block.index]
        env = dict(state) if state is not None else dict(self.entry_env)
        for earlier in block.pcs:
            if earlier == pc:
                break
            self._step(self.cfg.instruction_at(earlier), env)
        return env

    # -- abstract interpretation of one instruction ---------------------------

    def _step(self, instruction, env: Dict[int, Value]) -> None:
        op = instruction.op
        dest, sources = operand_roles(op)
        if dest is None:
            return
        dest_reg = getattr(instruction, dest)
        if op == "li":
            env[dest_reg] = const_value(instruction.b)
            return
        if op == "mov":
            env[dest_reg] = env[instruction.b]
            return
        if is_load(op):
            env[dest_reg] = TOP
            return
        values = [env[getattr(instruction, slot)] for slot in sources]
        signature = instruction.info.signature
        if signature.endswith("I"):
            values.append(const_value(instruction.c))
        env[dest_reg] = self._combine(op, values)

    def _combine(self, op: str, values: List[Value]) -> Value:
        if all(v.kind == _CONST for v in values):
            folded = _fold_constant(op, [v.const for v in values])
            if folded is not None:
                return const_value(folded)
            return TOP
        if op in ("add", "addi", "sub", "subi") and len(values) == 2:
            left, right = values
            # pointer arithmetic: base ± known offset stays in the base's
            # regions; base + unknown index stays in the region containing
            # the base (the in-bounds assumption, see module docstring)
            if left.kind == _REGION and right.kind != _REGION:
                return left
            if op in ("add", "addi") and right.kind == _REGION \
                    and left.kind != _REGION:
                return right
            for base, other in ((left, right), (right, left)):
                if base.kind == _CONST and other.kind == _TOP \
                        and op in ("add", "addi"):
                    name = region_containing(base.const, self.layout)
                    if name is not None:
                        return region_value([name])
        return TOP


def _fold_constant(op: str, operands: List):
    """Evaluate one pure opcode over concrete operands, or None."""
    try:
        if op in ("add", "addi"):
            return operands[0] + operands[1]
        if op in ("sub", "subi"):
            return operands[0] - operands[1]
        if op in ("mul", "muli"):
            return operands[0] * operands[1]
        if op in ("and_", "andi"):
            return operands[0] & operands[1]
        if op in ("or_", "ori"):
            return operands[0] | operands[1]
        if op in ("xor", "xori"):
            return operands[0] ^ operands[1]
        if op in ("shl", "shli"):
            return operands[0] << operands[1]
        if op in ("shr", "shri"):
            return operands[0] >> operands[1]
        if op in ("slt", "slti"):
            return 1 if operands[0] < operands[1] else 0
        if op == "sle":
            return 1 if operands[0] <= operands[1] else 0
        if op in ("sgt", "sgti"):
            return 1 if operands[0] > operands[1] else 0
        if op == "sge":
            return 1 if operands[0] >= operands[1] else 0
        if op in ("seq", "seqi"):
            return 1 if operands[0] == operands[1] else 0
        if op == "sne":
            return 1 if operands[0] != operands[1] else 0
    except TypeError:  # pragma: no cover - defensive; operands are numbers
        return None
    return None


# ---------------------------------------------------------------------------
# per-region access summaries
# ---------------------------------------------------------------------------


class AccessSummary:
    """May-read / may-write / may-trigger address sets of one region."""

    __slots__ = ("reads", "writes", "tstores")

    def __init__(self):
        #: (pc, AddressSet) per load
        self.reads: List[Tuple[int, AddressSet]] = []
        #: (pc, AddressSet) per store, triggering stores included
        self.writes: List[Tuple[int, AddressSet]] = []
        #: (pc, AddressSet) per triggering store only
        self.tstores: List[Tuple[int, AddressSet]] = []

    def read_set(self) -> AddressSet:
        """Union of every address any load in the slice may touch."""
        return union_addresses(s for _pc, s in self.reads)

    def write_set(self) -> AddressSet:
        """Union of every address any store (plain or tst) may touch."""
        return union_addresses(s for _pc, s in self.writes)

    def __repr__(self) -> str:
        return (f"AccessSummary({len(self.reads)} reads, "
                f"{len(self.writes)} writes, {len(self.tstores)} tstores)")


def union_addresses(sets) -> AddressSet:
    """The union of several :class:`AddressSet`\\ s."""
    exact, regions, top = set(), set(), False
    for address_set in sets:
        top = top or address_set.top
        exact |= address_set.exact
        regions |= address_set.regions
    return AddressSet(exact, regions, top)


def access_address(instruction, env: Dict[int, Value], layout) -> AddressSet:
    """The abstract address set of one memory instruction."""
    op = instruction.op
    if op in ("ld", "st", "tst"):
        base, offset = env[instruction.b], const_value(instruction.c)
    else:  # ldx / stx / tstx
        base, offset = env[instruction.b], env[instruction.c]
    if base.kind == _CONST and offset.kind == _CONST:
        return value_to_addresses(
            const_value(base.const + offset.const), layout)
    if base.kind == _REGION:
        return AddressSet(regions=base.regions)
    if base.kind == _CONST:
        name = region_containing(base.const, layout)
        if name is not None:
            return AddressSet(regions=[name])
    if offset.kind == _REGION:
        # stx v, i, base with the pointer in the index slot
        return AddressSet(regions=offset.regions)
    if offset.kind == _CONST:
        name = region_containing(offset.const, layout)
        if name is not None:
            return AddressSet(regions=[name])
    return AddressSet.anywhere()


def access_summary(values: ValueAnalysis) -> AccessSummary:
    """Classify every memory access in the region of ``values``."""
    cfg = values.cfg
    layout = cfg.program.layout
    summary = AccessSummary()
    for pc in sorted(cfg.pcs):
        instruction = cfg.instruction_at(pc)
        op = instruction.op
        if not (is_load(op) or is_store(op)):
            continue
        addresses = access_address(instruction, values.env_at(pc), layout)
        if is_load(op):
            summary.reads.append((pc, addresses))
        else:
            summary.writes.append((pc, addresses))
            if is_triggering_store(op):
                summary.tstores.append((pc, addresses))
    return summary
