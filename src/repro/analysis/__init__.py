"""Static analysis of DTIR programs: dataflow framework + DTT safety checks.

The paper's correctness contract is strict: a data-triggered thread's
computation may depend only on the triggering store's data and on memory
that does not change between the trigger and the consume point.  Nothing
at runtime checks that contract — a violating conversion silently computes
wrong answers whenever the skip fires.  This package checks it statically:

* :mod:`repro.analysis.findings` — the shared finding model (severity,
  code, pc, message) with JSON serialization and baseline suppression;
* :mod:`repro.analysis.cfg` — basic-block control-flow graphs over
  finalized programs, with call/ret return-site modeling, dominators, and
  per-thread region slicing;
* :mod:`repro.analysis.dataflow` — a generic worklist solver plus the
  stock analyses (reaching definitions, liveness, constant/address
  propagation over the ISA's ``base+offset`` addressing);
* :mod:`repro.analysis.symbolic` — affine symbolic tracking of thread
  addresses over the trigger arguments (``r1``–``r3``), the overlap
  algebra behind the v2 race checks, and parameterized-region recovery
  proofs used by the autoconvert pipeline;
* :mod:`repro.analysis.checks` — the DTT safety passes built on top
  (trigger coverage, read/write races, consume-before-complete,
  uninitialized registers, parameterized races), surfaced as
  ``dtt-harness analyze``.
"""

from repro.analysis.findings import (ERROR, WARNING, Baseline, Finding,
                                     Severity, errors_only, findings_to_json)
from repro.analysis.checks import (CHECKS, CHECK_VERSIONS, analysis_summary,
                                   analyze_build, analyze_program,
                                   analyze_workload, summarize_workload)
from repro.analysis.symbolic import (Affine, ParamRecovery, overlap_verdict,
                                     prove_param_recovery, symbolic_report)

__all__ = [
    "ERROR",
    "WARNING",
    "Baseline",
    "Finding",
    "Severity",
    "errors_only",
    "findings_to_json",
    "CHECKS",
    "CHECK_VERSIONS",
    "Affine",
    "ParamRecovery",
    "overlap_verdict",
    "prove_param_recovery",
    "symbolic_report",
    "analysis_summary",
    "analyze_build",
    "analyze_program",
    "analyze_workload",
    "summarize_workload",
]
