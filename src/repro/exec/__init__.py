"""Parallel execution subsystem: run plans, the process-pool scheduler,
the content-addressed result store, and regression compare.

* :mod:`repro.exec.plan` — the deduplicated run matrix experiments share
  (:class:`RunSpec` is the identity of a run everywhere: memo key,
  canonical string, store address);
* :mod:`repro.exec.store` — the persistent on-disk backend behind
  ``SuiteRunner``'s in-memory memo;
* :mod:`repro.exec.pool` — ``ProcessPoolExecutor`` scheduling of a plan
  across N workers (import lazily: it pulls in the harness);
* :mod:`repro.exec.compare` — direction-aware regression diffing of two
  stored result sets, results files, or manifests.

Only ``plan`` and ``store`` are imported eagerly — ``pool`` and
``compare`` import the harness layer, which itself imports this package.
"""

from repro.exec.plan import (RunPlan, RunSpec, build_plan,
                             canonical_run_name, config_fingerprint)
from repro.exec.store import ResultStore

__all__ = [
    "RunPlan",
    "RunSpec",
    "build_plan",
    "canonical_run_name",
    "config_fingerprint",
    "ResultStore",
]
