"""Regression compare: diff two result sets and flag what got worse.

``dtt-harness compare OLD NEW`` accepts, for each side, any of:

* a **result-store directory** (:mod:`repro.exec.store`) — every entry
  becomes one row of numeric cells (cycles, energy, instruction counts,
  redundancy fractions), plus a derived ``speedup`` cell for each DTT
  run whose baseline is also stored;
* a **results JSON file** (``dtt-harness run --json``) — one row per
  experiment (shape-check pass counts, manifest cost totals) plus one
  boolean cell per individual shape check;
* a **manifest JSON file** (a single :class:`RunManifest` dict) — cost
  and cache counters plus per-phase wall-clock;
* a **benchmark file** (any ``"kind": "bench_*"`` JSON, e.g.
  ``BENCH_interpreter.json`` from ``dtt-harness bench`` or
  ``BENCH_trace_overhead.json`` from ``dtt-harness bench --trace``) —
  one row per benchmark entry with its numeric columns.

Cells compare direction-aware: ``speedup`` (and check pass counts) may
only *fall* by more than the tolerance to count as a regression,
``cycles``/``energy`` may only *rise*, redundancy fractions regress on
drift in either direction, and wall-clock cells are informational only
(they are noisy and never gate).  A shape check flipping from pass to
fail is always a regression, tolerance notwithstanding.

CI-estimated metrics (sampled redundancy profiling) ship a sibling
``<metric>_ci_width`` cell; for those, the effective tolerance widens to
the confidence-interval width when that exceeds ``--tolerance`` —
movement inside the interval is sampling noise by definition.  The
``_ci_width`` / ``_ci_low`` / ``_ci_high`` cells themselves never gate.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.errors import CompareError

#: default relative tolerance before a numeric change counts
DEFAULT_TOLERANCE = 0.05

#: directions a cell can regress in
_DOWN_BAD = "down_bad"    # smaller is worse (speedup, checks passed)
_UP_BAD = "up_bad"        # bigger is worse (cycles, energy)
_DRIFT = "drift"          # any movement is suspect (fractions, counters)
_INFO = "info"            # never gates (wall clock, cache counters)


def metric_direction(name: str) -> str:
    """Which direction of change counts as a regression for ``name``."""
    base = name.rsplit(".", 1)[-1]
    if base.endswith(("_ci_width", "_ci_low", "_ci_high")):
        return _INFO  # interval bounds annotate their estimate, never gate
    if base in ("speedup", "speedup_vs_closure", "checks_passed",
                "instructions_per_sec", "compression_ratio", "accepted",
                "elimination", "hand_elimination"):
        return _DOWN_BAD
    if base in ("cycles", "energy", "analysis_errors", "bytes_per_event",
                "sampled_abs_error", "rejected"):
        return _UP_BAD
    if ("seconds" in base or base.startswith("phase:")
            or base in ("events_per_sec",
                        "cache_hits", "cache_misses", "store_hits",
                        "store_misses", "peak_queue_depth", "checks_total",
                        "trace_dropped_events", "unmatched_closers",
                        "legacy_instructions_per_sec")):
        return _INFO
    return _DRIFT


class ResultSet:
    """One side of a comparison: numeric cells + boolean checks by row."""

    def __init__(self, source: str, kind: str,
                 cells: Dict[str, Dict[str, float]],
                 checks: Optional[Dict[str, bool]] = None):
        self.source = source
        self.kind = kind  # 'store' | 'results' | 'manifest'
        self.cells = cells
        self.checks = checks or {}

    def __repr__(self) -> str:
        return (f"ResultSet({self.kind}, {len(self.cells)} rows, "
                f"{len(self.checks)} checks)")


class Delta:
    """One compared cell (or check) and its verdict."""

    __slots__ = ("row", "metric", "old", "new", "relative", "direction",
                 "regression", "note")

    def __init__(self, row: str, metric: str, old, new, relative: float,
                 direction: str, regression: bool, note: str = ""):
        self.row = row
        self.metric = metric
        self.old = old
        self.new = new
        self.relative = relative
        self.direction = direction
        self.regression = regression
        self.note = note

    def as_dict(self) -> Dict:
        """JSON-ready dict of this delta."""
        return {
            "row": self.row,
            "metric": self.metric,
            "old": self.old,
            "new": self.new,
            "relative_change": round(self.relative, 6),
            "direction": self.direction,
            "regression": self.regression,
            "note": self.note,
        }


class CompareReport:
    """Everything the compare found, renderable and JSON-able."""

    def __init__(self, old: ResultSet, new: ResultSet, tolerance: float):
        self.old = old
        self.new = new
        self.tolerance = tolerance
        self.deltas: List[Delta] = []
        self.missing: List[str] = []  # rows only in old
        self.added: List[str] = []    # rows only in new

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regression]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions) or bool(self.missing)

    def as_dict(self) -> Dict:
        """JSON-ready dict of the full report (``compare --json``)."""
        return {
            "old": self.old.source,
            "new": self.new.source,
            "kind": self.old.kind,
            "tolerance": self.tolerance,
            "rows_compared": len(
                set(self.old.cells) & set(self.new.cells)),
            "missing_rows": sorted(self.missing),
            "added_rows": sorted(self.added),
            "changes": [d.as_dict() for d in self.deltas],
            "regressions": len(self.regressions),
        }

    def render(self) -> str:
        """Human-readable report, one line per change."""
        lines = [f"compare ({self.old.kind}): {self.old.source} -> "
                 f"{self.new.source}  [tolerance {self.tolerance:.1%}]"]
        for name in sorted(self.missing):
            lines.append(f"  MISSING {name} (present only in old)")
        for name in sorted(self.added):
            lines.append(f"  added   {name} (present only in new)")
        if not self.deltas:
            lines.append("  no changes beyond tolerance")
        for delta in self.deltas:
            mark = "REGRESSION" if delta.regression else "change    "
            if isinstance(delta.old, bool) or isinstance(delta.new, bool):
                movement = f"{delta.old} -> {delta.new}"
            else:
                movement = (f"{delta.old:g} -> {delta.new:g} "
                            f"({delta.relative:+.1%})")
            note = f"  [{delta.note}]" if delta.note else ""
            lines.append(
                f"  {mark} {delta.row} :: {delta.metric}: {movement}{note}")
        lines.append(
            f"{len(self.regressions)} regression(s), "
            f"{len(self.deltas)} change(s), "
            f"{len(self.missing)} missing row(s)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------


def load_result_set(path: str) -> ResultSet:
    """Load one comparison side, auto-detecting its format."""
    if os.path.isdir(path):
        return _load_store(path)
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        raise CompareError(f"cannot read {path!r}: {error}") from error
    if isinstance(data, list):
        return _load_results(path, data)
    if isinstance(data, dict) and str(data.get("kind", "")).startswith("bench"):
        return _load_bench(path, data)
    if isinstance(data, dict) and "phase_seconds" in data:
        return _load_manifest(path, data)
    raise CompareError(
        f"{path!r} is neither a results list, a run manifest, nor an "
        "interpreter benchmark file")


def _load_store(path: str) -> ResultSet:
    from repro.exec.plan import RunSpec
    from repro.exec.store import ResultStore

    if not os.path.isdir(os.path.join(path, "objects")):
        raise CompareError(
            f"{path!r} is a directory but not a result store "
            "(no objects/ inside)")
    store = ResultStore(path)
    cells: Dict[str, Dict[str, float]] = {}
    by_name: Dict[str, Dict] = {}
    for entry in store.entries():
        by_name[entry["canonical"]] = entry
        payload = entry.get("payload", {})
        row: Dict[str, float] = {}
        if entry.get("kind") == "timed":
            for metric in ("cycles", "instructions", "main_instructions",
                           "support_instructions", "dram_accesses",
                           "energy"):
                if isinstance(payload.get(metric), (int, float)):
                    row[metric] = payload[metric]
        else:
            loads = payload.get("loads", {})
            slices = payload.get("slices", {})
            for summary in (loads, slices):
                for metric, value in summary.items():
                    if (metric.endswith(("_fraction", "_ci_width"))
                            and isinstance(value, (int, float))):
                        row[metric] = value
        if row:
            cells[entry["canonical"]] = row
    # derive speedup for every DTT run whose baseline is also stored
    for name, entry in by_name.items():
        if entry.get("kind") != "timed":
            continue
        try:
            spec = RunSpec.from_dict(entry["identity"])
        except Exception:
            continue
        baseline_spec = spec.baseline_spec()
        if baseline_spec is None:
            continue
        baseline = by_name.get(baseline_spec.canonical())
        if baseline is None:
            continue
        dtt_cycles = entry["payload"].get("cycles")
        base_cycles = baseline["payload"].get("cycles")
        if dtt_cycles and base_cycles:
            cells.setdefault(name, {})["speedup"] = \
                base_cycles / dtt_cycles
    if not cells:
        raise CompareError(f"result store {path!r} holds no entries")
    return ResultSet(path, "store", cells)


def _load_results(path: str, data: List) -> ResultSet:
    cells: Dict[str, Dict[str, float]] = {}
    checks: Dict[str, bool] = {}
    for item in data:
        if not isinstance(item, dict) or "experiment" not in item:
            raise CompareError(
                f"{path!r}: expected experiment result dicts")
        eid = item["experiment"]
        item_checks = item.get("checks", [])
        cells[eid] = {
            "checks_passed": sum(1 for c in item_checks if c.get("passed")),
            "checks_total": len(item_checks),
        }
        manifest = item.get("manifest")
        if isinstance(manifest, dict):
            if isinstance(manifest.get("total_seconds"), (int, float)):
                cells[eid]["total_seconds"] = manifest["total_seconds"]
        for check in item_checks:
            checks[f"{eid} :: {check.get('name')}"] = bool(
                check.get("passed"))
    if not cells:
        raise CompareError(f"{path!r} holds no experiment results")
    return ResultSet(path, "results", cells, checks)


def _load_bench(path: str, data: Dict) -> ResultSet:
    cells: Dict[str, Dict[str, float]] = {}
    for name, row in (data.get("rows") or {}).items():
        if not isinstance(row, dict):
            raise CompareError(f"{path!r}: bench row {name!r} is not a dict")
        numeric = {
            metric: value for metric, value in row.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        if numeric:
            cells[name] = numeric
    if not cells:
        raise CompareError(f"{path!r} holds no benchmark rows")
    return ResultSet(path, "bench", cells)


def _load_manifest(path: str, data: Dict) -> ResultSet:
    row: Dict[str, float] = {}
    for metric in ("total_seconds", "cache_hits", "cache_misses",
                   "store_hits", "store_misses", "peak_queue_depth",
                   "trace_dropped_events", "unmatched_closers"):
        if isinstance(data.get(metric), (int, float)):
            row[metric] = data[metric]
    for phase, seconds in (data.get("phase_seconds") or {}).items():
        if isinstance(seconds, (int, float)):
            row[f"phase:{phase}"] = seconds
    label = data.get("experiment") or "manifest"
    cells = {label: row}
    # schema v4: one row per analyzed DTT build, so a conversion whose
    # safety profile changed (new analyzer errors: up_bad; warning drift)
    # is flagged next to its cost metrics
    for summary in data.get("analysis") or []:
        if not isinstance(summary, dict):
            continue
        name = f"analysis:{summary.get('workload')}:{summary.get('kind')}"
        analysis_row: Dict[str, float] = {}
        if isinstance(summary.get("errors"), (int, float)):
            analysis_row["analysis_errors"] = summary["errors"]
        if isinstance(summary.get("warnings"), (int, float)):
            analysis_row["analysis_warnings"] = summary["warnings"]
        if analysis_row:
            cells[name] = analysis_row
    # schema v6: one row per automatic conversion, so a converter that
    # starts accepting fewer candidates (down_bad), producing slower
    # builds (cycles: up_bad), or eliminating less redundancy (down_bad)
    # shows up next to the run it converted for.  Unknown extra fields
    # are ignored, so newer-schema manifests still load.
    for audit in data.get("autoconvert") or []:
        if not isinstance(audit, dict):
            continue
        name = f"autoconvert:{audit.get('workload', '?')}"
        convert_row: Dict[str, float] = {}
        for metric in ("considered", "baseline_cycles", "cycles",
                       "speedup", "elimination"):
            if isinstance(audit.get(metric), (int, float)):
                convert_row[metric] = audit[metric]
        if isinstance(audit.get("accepted"), list):
            convert_row["accepted"] = len(audit["accepted"])
        if isinstance(audit.get("rejected"), dict):
            convert_row["rejected"] = sum(
                count for count in audit["rejected"].values()
                if isinstance(count, (int, float)))
        if convert_row:
            cells[name] = convert_row
    return ResultSet(path, "manifest", cells)


# ---------------------------------------------------------------------------
# comparing
# ---------------------------------------------------------------------------


def _relative(old: float, new: float) -> float:
    if old == 0:
        return 0.0 if new == 0 else float("inf") if new > 0 else float("-inf")
    return (new - old) / abs(old)


def compare_sets(old: ResultSet, new: ResultSet,
                 tolerance: float = DEFAULT_TOLERANCE) -> CompareReport:
    """Diff ``new`` against ``old``; changes beyond ``tolerance`` that
    move in a metric's bad direction are regressions."""
    if old.kind != new.kind:
        raise CompareError(
            f"cannot compare a {old.kind} set against a {new.kind} set; "
            "give two stores, two results files, or two manifests")
    if tolerance < 0:
        raise CompareError(f"tolerance must be >= 0, got {tolerance}")
    report = CompareReport(old, new, tolerance)
    report.missing = [row for row in old.cells if row not in new.cells]
    report.added = [row for row in new.cells if row not in old.cells]

    # Pre-v6 manifests carry no autoconvert section at all, so comparing
    # one against a v6+ manifest would count every `autoconvert:` row as
    # missing (which gates) or silently addable.  When the whole family
    # is absent from one side — a schema difference, not a conversion
    # change — surface each row as a non-gating info delta instead.  A
    # genuine single-workload disappearance (both sides have *some*
    # autoconvert rows) still gates as missing.
    if old.kind == "manifest":
        old_auto = [r for r in old.cells if r.startswith("autoconvert:")]
        new_auto = [r for r in new.cells if r.startswith("autoconvert:")]
        if old_auto and not new_auto:
            report.missing = [r for r in report.missing if r not in old_auto]
            for row in sorted(old_auto):
                report.deltas.append(Delta(
                    row, "autoconvert_rows", 1, 0, -1.0, _INFO, False,
                    note="rows only in old (pre-v6 manifest on new side)"))
        elif new_auto and not old_auto:
            report.added = [r for r in report.added if r not in new_auto]
            for row in sorted(new_auto):
                report.deltas.append(Delta(
                    row, "autoconvert_rows", 0, 1, 1.0, _INFO, False,
                    note="rows only in new (pre-v6 manifest on old side)"))

    for row in sorted(set(old.cells) & set(new.cells)):
        old_cells, new_cells = old.cells[row], new.cells[row]
        for metric in sorted(set(old_cells) & set(new_cells)):
            if metric.endswith(("_ci_width", "_ci_low", "_ci_high")):
                continue  # consumed as the sibling estimate's tolerance
            before, after = old_cells[metric], new_cells[metric]
            relative = _relative(before, after)
            # a CI-estimated metric (sampled profiling) publishes a
            # sibling `<metric>_ci_width` cell; movement inside the wider
            # of the two intervals is sampling noise, not a change, so
            # the effective tolerance is max(tolerance, relative CI width)
            note = ""
            effective = tolerance
            ci_width = max(old_cells.get(f"{metric}_ci_width", 0.0),
                           new_cells.get(f"{metric}_ci_width", 0.0))
            if ci_width and before:
                ci_relative = ci_width / abs(before)
                if ci_relative > effective:
                    effective = ci_relative
                    note = f"tolerance = CI width ({ci_width:g})"
            if abs(relative) <= effective:
                continue
            direction = metric_direction(metric)
            regression = (
                (direction == _DOWN_BAD and relative < 0)
                or (direction == _UP_BAD and relative > 0)
                or direction == _DRIFT
            )
            report.deltas.append(Delta(
                row, metric, before, after, relative, direction, regression,
                note=note))

    for name in sorted(set(old.checks) & set(new.checks)):
        if old.checks[name] == new.checks[name]:
            continue
        flipped_to_fail = old.checks[name] and not new.checks[name]
        report.deltas.append(Delta(
            name.split(" :: ")[0], name.split(" :: ", 1)[-1],
            old.checks[name], new.checks[name],
            0.0, _DOWN_BAD, flipped_to_fail,
            note="check flipped" if flipped_to_fail else "check now passes"))
    return report


def compare_paths(old_path: str, new_path: str,
                  tolerance: float = DEFAULT_TOLERANCE) -> CompareReport:
    """Convenience: load both sides and compare them."""
    return compare_sets(load_result_set(old_path),
                        load_result_set(new_path), tolerance)
