"""The process-pool scheduler: execute a :class:`~repro.exec.plan.RunPlan`
across N worker processes.

The parent process first serves every planned run it can from the
runner's in-memory memo and the persistent result store; only the
remainder is simulated.  With ``jobs > 1`` that remainder is sharded
across a :class:`~concurrent.futures.ProcessPoolExecutor` in
longest-job-first order (fed by the store's per-phase EWMA timings, so a
long pole starts first and the tail stays short), with a per-task
timeout, one pool rebuild + retry when a worker process dies, and a
serial fallback if the rebuilt pool dies too.  With ``jobs = 1`` (or
when engine tracing is on, which needs live engines in the parent) the
plan executes serially through the ordinary runner path.

Workers are deliberately dumb: each builds a private ``SuiteRunner`` and
``MetricsRegistry``, executes exactly one :class:`RunSpec`, and returns
the encoded payload plus its metrics and phase timings.  The parent
installs payloads into its own runner (which also persists them to the
store), merges worker metrics into the shared registry, and re-checks
every DTT output against its baseline — so parallel runs go through the
same correctness gate as serial ones and the final runner state is
byte-identical to a serial execution.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CorrectnessError, ExecError
from repro.exec.plan import RunPlan, RunSpec

#: default per-task wall-clock budget, seconds
DEFAULT_TASK_TIMEOUT = 600.0


def _worker(spec_dict: Dict, seed: Optional[int],
            scale: Optional[int]) -> Dict:
    """Execute one run in a worker process; module-level for pickling.

    Baseline checking is disabled here — the baseline is its own planned
    run, and the parent re-verifies every DTT output after installation —
    so no simulation is ever duplicated across workers.
    """
    from repro.harness.runner import SuiteRunner
    from repro.obs.metrics import MetricsRegistry

    spec = RunSpec.from_dict(spec_dict)
    registry = MetricsRegistry()
    runner = SuiteRunner(seed=seed, scale=scale, metrics=registry)
    started = time.perf_counter()
    runner.execute_spec(spec, check_against_baseline=False)
    return {
        "spec": spec_dict,
        "payload": runner.payload_for(spec),
        "elapsed": time.perf_counter() - started,
        "metrics": registry.as_dict(),
        "phases": runner.phase_seconds(),
    }


def _ordered_longest_first(specs: Sequence[RunSpec],
                           store) -> List[RunSpec]:
    """Specs sorted longest-job-first by stored phase timings.

    Runs with no recorded timing sort first (they might be the long
    pole); ties keep plan order so scheduling stays deterministic.
    """
    if store is None:
        return list(specs)

    def sort_key(pair: Tuple[int, RunSpec]):
        index, spec = pair
        hint = store.timing_hint(spec.phase_name())
        return (-(float("inf") if hint is None else hint), index)

    return [spec for _, spec in sorted(enumerate(specs), key=sort_key)]


def _run_batch(specs: Sequence[RunSpec], jobs: int, seed: Optional[int],
               scale: Optional[int],
               timeout: float) -> Tuple[List[Dict], List[RunSpec]]:
    """Run ``specs`` through one pool; returns (results, crashed_specs).

    A worker *crash* (BrokenProcessPool) marks the affected specs for
    retry; a deterministic workload exception propagates unchanged, and
    a task exceeding ``timeout`` raises :class:`ExecError` — retrying
    either would just fail again.
    """
    results: List[Dict] = []
    crashed: List[RunSpec] = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [(pool.submit(_worker, spec.as_dict(), seed, scale), spec)
                   for spec in specs]
        for future, spec in futures:
            try:
                results.append(future.result(timeout=timeout))
            except BrokenProcessPool:
                crashed.append(spec)
            except FutureTimeoutError:
                for other, _spec in futures:
                    other.cancel()
                raise ExecError(
                    f"run {spec.canonical()} exceeded the per-task "
                    f"timeout of {timeout:g}s"
                ) from None
    return results, crashed


def execute_plan(plan: RunPlan, runner, jobs: int = 1,
                 task_timeout: float = DEFAULT_TASK_TIMEOUT) -> Dict:
    """Execute every run in ``plan`` into ``runner``; returns stats.

    After this returns, every planned run is memoized in the runner, so
    the experiments that stated the plan re-simulate nothing.  The
    returned dict reports where each run came from::

        {"jobs", "mode", "planned", "memo_hits", "store_hits",
         "parallel_executed", "serial_executed", "worker_retries"}
    """
    if jobs < 1:
        raise ExecError(f"jobs must be >= 1, got {jobs}")
    stats = {
        "jobs": jobs,
        "mode": "serial",
        "planned": len(plan),
        "memo_hits": 0,
        "store_hits": 0,
        "parallel_executed": 0,
        "serial_executed": 0,
        "worker_retries": 0,
    }

    # live telemetry: declare the plan size up front so the heartbeat's
    # ETA has a denominator; serial-path runs tick themselves inside
    # SuiteRunner.timed/profile, the parallel path ticks on install
    status = getattr(runner, "status", None)
    if status is not None:
        status.set_total(len(plan))
        status.begin_phase("plan")

    # 1. serve what we can without simulating: memo first, then store
    pending: List[RunSpec] = []
    for spec in plan:
        if runner.is_cached(spec):
            stats["memo_hits"] += 1
        elif runner.load_from_store(spec):
            stats["store_hits"] += 1
        else:
            pending.append(spec)
    if status is not None:
        cached = stats["memo_hits"] + stats["store_hits"]
        if cached:
            status.note_cached(cached)
    if not pending:
        return stats

    # 2. tracing needs live engines in the parent process
    parallel_ok = jobs > 1 and not getattr(runner, "trace_enabled", False)

    executed_parallel: List[RunSpec] = []
    if parallel_ok:
        stats["mode"] = "parallel"
        ordered = _ordered_longest_first(pending, runner.store)
        remaining = ordered
        for attempt in (1, 2):  # one pool rebuild after a worker crash
            try:
                results, crashed = _run_batch(remaining, jobs, runner.seed,
                                              runner.scale, task_timeout)
            except OSError:
                # the pool could not even start (sandboxed host, missing
                # semaphores); fall back to serial for everything left
                break
            for outcome in results:
                spec = RunSpec.from_dict(outcome["spec"])
                runner.install_payload(spec, outcome["payload"],
                                       outcome["elapsed"])
                runner.merge_worker_run(outcome["metrics"],
                                        outcome["phases"])
                executed_parallel.append(spec)
                if status is not None:
                    status.complete_run(spec.phase_name(),
                                        outcome["elapsed"])
            remaining = crashed
            if not crashed:
                break
            stats["worker_retries"] += len(crashed)
        pending = remaining  # anything still here falls back to serial

    # 3. serial path: the ordinary runner execution (with its built-in
    # baseline checking), used for jobs=1, tracing, and crash fallback
    for spec in pending:
        runner.execute_spec(spec)
        stats["serial_executed"] += 1
    stats["parallel_executed"] = len(executed_parallel)

    # 4. pool-executed DTT runs skipped in-worker baseline checking;
    # apply the same correctness gate here
    _verify_outputs(runner, executed_parallel)

    if runner.metrics is not None:
        runner.metrics.counter(
            "pool.tasks_executed",
            "plan runs executed by the pool scheduler").inc(
                stats["parallel_executed"] + stats["serial_executed"])
        if stats["worker_retries"]:
            runner.metrics.counter(
                "pool.worker_retries",
                "runs resubmitted after a worker crash").inc(
                    stats["worker_retries"])
    return stats


def _verify_outputs(runner, specs: Sequence[RunSpec]) -> None:
    """Check every executed DTT run's output against its baseline."""
    for spec in specs:
        baseline_spec = spec.baseline_spec()
        if baseline_spec is None:
            continue
        result = runner.result_for(spec)
        baseline = runner.result_for(baseline_spec)
        if result.output != baseline.output:
            raise CorrectnessError(
                f"{spec.workload}: {spec.build} output diverges from "
                f"baseline under {spec.config_name}"
            )
