"""The content-addressed on-disk result store.

``SuiteRunner``'s in-memory memo dies with the interpreter; the store is
the persistent backend behind it.  Every completed run is written as one
JSON object file whose name is the SHA-256 of the run's full identity —
workload, build kind, machine configuration, complete DTT-config
fingerprint, seed, scale, and the store schema version — so runs survive
across processes, harness invocations, and CI jobs, and distinct
configurations can never alias.

Layout::

    <root>/
      objects/<aa>/<sha256>.json   # one entry per run
      timings.json                 # EWMA seconds per phase (scheduler hints)

Each entry embeds its own identity and canonical name; ``get`` verifies
them against the requested spec, treats any unreadable / mismatched /
wrong-schema file as absent, and deletes the corrupt file so the next
execution heals the store.  Writes are atomic (temp file + ``os.replace``)
so a killed run never leaves a half-written entry.

The payload codecs round-trip :class:`~repro.timing.stats.TimingResult`
and :class:`~repro.profiling.report.RedundancyReport` through plain JSON
types bit-identically (Python's ``json`` preserves ints exactly and
floats via ``repr``).  DTT runs additionally persist the engine's
per-thread status rows and queue high-water mark, restored as a
:class:`StoredEngineView` so experiments that read engine counters
(E6, E8, E9) work from a warm store without re-simulating.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import StoreError
from repro.exec.plan import RunSpec
from repro.obs.manifest import fingerprint_of
from repro.timing.stats import TimingResult

#: EWMA weight of the newest observation when updating timing hints
_TIMING_ALPHA = 0.5


# ---------------------------------------------------------------------------
# restored-object views
# ---------------------------------------------------------------------------


class _QueueView:
    """Stand-in for a ThreadQueue: just the persisted high-water mark."""

    __slots__ = ("depth_high_water",)

    def __init__(self, depth_high_water: int):
        self.depth_high_water = depth_high_water


class _StatusRowView:
    """Read-only stand-in for :class:`~repro.core.status.ThreadStatus`."""

    def __init__(self, name: str, counters: Dict[str, int]):
        self.name = name
        for field, value in counters.items():
            setattr(self, field, value)

    @property
    def skip_fraction(self) -> float:
        return self.clean_consumes / self.consumes if self.consumes else 0.0

    def __repr__(self) -> str:
        return f"_StatusRowView({self.name!r})"


class StoredEngineView:
    """Read-only stand-in for a :class:`~repro.core.engine.DttEngine`
    reconstructed from a store entry: ``summary()``, per-thread
    ``status`` rows, and ``queue.depth_high_water`` — the surfaces the
    experiments read after a run."""

    def __init__(self, summary: Dict[str, int],
                 status_rows: Dict[str, Dict[str, int]], queue_depth: int):
        self._summary = dict(summary or {})
        self.status = {name: _StatusRowView(name, counters)
                       for name, counters in status_rows.items()}
        self.queue = _QueueView(queue_depth)

    def summary(self) -> Dict[str, int]:
        """The engine counters as recorded at store time."""
        return dict(self._summary)

    def __repr__(self) -> str:
        return f"StoredEngineView({sorted(self.status)})"


class _SummaryView:
    """Attribute access over a stored analyzer summary dict."""

    def __init__(self, summary: Dict):
        self._summary = dict(summary)

    def summary(self) -> Dict:
        return dict(self._summary)

    def __getattr__(self, name: str):
        try:
            return self._summary[name]
        except KeyError:
            raise AttributeError(name) from None


class StoredRedundancyReport:
    """Read-only stand-in for
    :class:`~repro.profiling.report.RedundancyReport` reconstructed from
    a store entry; mirrors the attributes E1/E2 read."""

    def __init__(self, name: str, loads_summary: Dict, slices_summary: Dict,
                 output: List, instructions: int,
                 sites: Optional[Dict] = None):
        self.name = name
        #: persisted top-site stats ({"loads": [...], "stores": [...]}),
        #: or None for entries written before store schema v2
        self.sites = sites
        self.loads = _SummaryView(loads_summary)
        # RedundancyReport reads slices.redundant_fraction; the stored
        # summary spells it redundant_computation_fraction — alias both
        slices = dict(slices_summary)
        slices.setdefault("redundant_fraction",
                          slices.get("redundant_computation_fraction", 0.0))
        self.slices = _SummaryView(slices)
        self.output = output
        self.instructions = instructions

    @property
    def redundant_load_fraction(self) -> float:
        return self.loads.redundant_load_fraction

    @property
    def silent_store_fraction(self) -> float:
        return self.loads.silent_store_fraction

    @property
    def redundant_computation_fraction(self) -> float:
        return self.slices.redundant_computation_fraction

    def load_sites(self):
        """Persisted top load sites as live-profiler-shaped stat objects."""
        from repro.profiling.redundancy import LoadSiteStats

        out = []
        for row in (self.sites or {}).get("loads", []):
            stats = LoadSiteStats(row["pc"])
            stats.dynamic = row["dynamic"]
            stats.redundant = row["redundant"]
            out.append(stats)
        return out

    def store_sites(self):
        """Persisted top store sites as live-profiler-shaped stat objects."""
        from repro.profiling.redundancy import StoreSiteStats

        out = []
        for row in (self.sites or {}).get("stores", []):
            stats = StoreSiteStats(row["pc"], row["triggering"])
            stats.dynamic = row["dynamic"]
            stats.silent = row["silent"]
            out.append(stats)
        return out

    def summary(self) -> Dict:
        """The merged load + slice summary, as the live report renders it."""
        merged = self.loads.summary()
        merged.update(self.slices.summary())
        merged.pop("redundant_fraction", None)
        merged["name"] = self.name
        return merged

    def __repr__(self) -> str:
        return (
            f"StoredRedundancyReport({self.name!r}, "
            f"loads={self.redundant_load_fraction:.1%}, "
            f"computation={self.redundant_computation_fraction:.1%})"
        )


# ---------------------------------------------------------------------------
# payload codecs
# ---------------------------------------------------------------------------


def encode_timed(result: TimingResult, engine=None) -> Dict:
    """A timed run as a JSON-ready payload (engine counters included)."""
    payload = {slot: getattr(result, slot) for slot in TimingResult.__slots__}
    if engine is not None:
        payload["engine_status"] = {
            name: row.as_dict() for name, row in engine.status.rows().items()
        }
        payload["engine_queue_depth"] = engine.queue.depth_high_water
    return payload


def decode_timed(payload: Dict) -> Tuple[TimingResult,
                                         Optional[StoredEngineView]]:
    """Rebuild a :class:`TimingResult` (and engine view, if persisted)."""
    try:
        result = TimingResult(**{slot: payload[slot]
                                 for slot in TimingResult.__slots__})
    except (KeyError, TypeError) as error:
        raise StoreError(f"malformed timed payload: {error}") from error
    view = None
    if "engine_status" in payload:
        try:
            view = StoredEngineView(result.engine_summary,
                                    payload["engine_status"],
                                    payload["engine_queue_depth"])
        except (KeyError, TypeError, AttributeError) as error:
            raise StoreError(f"malformed engine payload: {error}") from error
    return result, view


#: per-site stats persisted per profile entry (enough for a top-sites table)
_SITE_LIMIT = 20


def encode_profile(report) -> Dict:
    """A redundancy profile as a JSON-ready payload.

    Live reports (whose ``loads`` is the profiler itself) additionally
    persist their hottest static sites, so the HTML report can render
    top-sites tables from a cold store; stored stand-ins round-trip
    whatever sites they were restored with.
    """
    payload = {
        "name": report.name,
        "loads": report.loads.summary(),
        "slices": report.slices.summary(),
        "output": report.output,
        "instructions": report.instructions,
    }
    loads = report.loads
    if hasattr(loads, "hottest_redundant_loads"):
        payload["sites"] = {
            "loads": [
                {"pc": s.pc, "dynamic": s.dynamic, "redundant": s.redundant}
                for s in loads.hottest_redundant_loads(_SITE_LIMIT)
            ],
            "stores": [
                {"pc": s.pc, "dynamic": s.dynamic, "silent": s.silent,
                 "triggering": s.triggering}
                for s in loads.store_sites()[:_SITE_LIMIT]
            ],
        }
    elif getattr(report, "sites", None):
        payload["sites"] = report.sites
    return payload


def decode_profile(payload: Dict) -> StoredRedundancyReport:
    """Rebuild a profile report view from a stored payload."""
    try:
        return StoredRedundancyReport(
            payload["name"], payload["loads"], payload["slices"],
            payload["output"], payload["instructions"],
            sites=payload.get("sites"),
        )
    except (KeyError, TypeError) as error:
        raise StoreError(f"malformed profile payload: {error}") from error


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------


class ResultStore:
    """Content-addressed persistent storage of completed runs."""

    #: bump when entry layout or payload encoding changes; old entries
    #: then simply miss (and are rebuilt), never misread
    #: (v2: profile payloads persist per-site top stats for reports)
    SCHEMA_VERSION = 2

    def __init__(self, root: str):
        self.root = root
        self._objects = os.path.join(root, "objects")
        os.makedirs(self._objects, exist_ok=True)
        self._timings_path = os.path.join(root, "timings.json")
        self._timings: Optional[Dict[str, float]] = None
        #: files dropped because they were unreadable or mismatched
        self.corrupt_entries_dropped = 0

    # -- addressing -----------------------------------------------------------

    def digest(self, spec: RunSpec) -> str:
        """The SHA-256 content address of one run spec."""
        identity = dict(spec.identity())
        identity["store_schema"] = self.SCHEMA_VERSION
        return fingerprint_of(identity)

    def path_for(self, spec: RunSpec) -> str:
        """On-disk path of the entry for ``spec`` (whether or not present)."""
        digest = self.digest(spec)
        return os.path.join(self._objects, digest[:2], f"{digest}.json")

    # -- entry I/O ------------------------------------------------------------

    def get(self, spec: RunSpec) -> Optional[Dict]:
        """The stored entry for ``spec``, or None.

        Unreadable, wrong-schema, or identity-mismatched files count as
        misses; the offending file is deleted so the entry is rebuilt on
        the next execution (self-healing).
        """
        path = self.path_for(spec)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._drop(path)
            return None
        if (not isinstance(entry, dict)
                or entry.get("store_schema") != self.SCHEMA_VERSION
                or entry.get("kind") != spec.kind
                or entry.get("canonical") != spec.canonical()
                or "payload" not in entry):
            self._drop(path)
            return None
        return entry

    def put(self, spec: RunSpec, payload: Dict, elapsed: float) -> str:
        """Persist one completed run; returns the entry path."""
        entry = {
            "store_schema": self.SCHEMA_VERSION,
            "kind": spec.kind,
            "canonical": spec.canonical(),
            "identity": spec.identity(),
            "elapsed_seconds": elapsed,
            "payload": payload,
        }
        path = self.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        try:
            self._atomic_write(path, json.dumps(entry, separators=(",", ":")))
        except (OSError, TypeError, ValueError) as error:
            raise StoreError(
                f"cannot store {spec.canonical()}: {error}") from error
        return path

    def discard(self, spec: RunSpec) -> None:
        """Remove the entry for ``spec`` if present."""
        self._drop(self.path_for(spec), count=False)

    def _drop(self, path: str, count: bool = True) -> None:
        try:
            os.unlink(path)
            if count:
                self.corrupt_entries_dropped += 1
        except OSError:
            pass

    @staticmethod
    def _atomic_write(path: str, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- enumeration ----------------------------------------------------------

    def entries(self) -> Iterator[Dict]:
        """Every readable entry, sorted by canonical name (for compare)."""
        loaded = []
        for directory, _dirs, files in os.walk(self._objects):
            for filename in files:
                if not filename.endswith(".json"):
                    continue
                try:
                    with open(os.path.join(directory, filename)) as handle:
                        entry = json.load(handle)
                except (OSError, ValueError):
                    continue
                if (isinstance(entry, dict)
                        and entry.get("store_schema") == self.SCHEMA_VERSION
                        and "canonical" in entry):
                    loaded.append(entry)
        loaded.sort(key=lambda e: e["canonical"])
        return iter(loaded)

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    # -- scheduler timing hints ----------------------------------------------

    def _load_timings(self) -> Dict[str, float]:
        if self._timings is None:
            try:
                with open(self._timings_path) as handle:
                    data = json.load(handle)
                self._timings = {str(k): float(v) for k, v in data.items()}
            except (OSError, ValueError, AttributeError):
                self._timings = {}
        return self._timings

    def timing_hint(self, phase: str) -> Optional[float]:
        """EWMA seconds previously observed for ``phase`` (or None)."""
        return self._load_timings().get(phase)

    def record_timing(self, phase: str, seconds: float) -> None:
        """Fold one observation into the persistent per-phase EWMA."""
        timings = self._load_timings()
        old = timings.get(phase)
        timings[phase] = seconds if old is None else (
            _TIMING_ALPHA * seconds + (1.0 - _TIMING_ALPHA) * old)
        try:
            self._atomic_write(self._timings_path,
                               json.dumps(timings, sort_keys=True))
        except OSError:
            pass  # hints are advisory; never fail a run over them

    def __repr__(self) -> str:
        return f"ResultStore({self.root!r})"
