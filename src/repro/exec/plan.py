"""Run plans: the deduplicated matrix of simulations the experiments need.

E1–E9 overlap heavily — E3, E4, E6, and E7 all consume the same
baseline/DTT sweep of the suite, E1 and E2 share every profile, and the
ablations re-time a handful of workloads under alternate configurations.
A :class:`RunPlan` states those needs *once*: each experiment contributes
the :class:`RunSpec`\\ s it requires, duplicates collapse, and the
scheduler (:mod:`repro.exec.pool`) executes every distinct run exactly
one time regardless of how many experiments asked for it.

A :class:`RunSpec` is also the *identity* of a run everywhere else in the
execution subsystem:

* ``runner_key()`` — the :class:`~repro.harness.runner.SuiteRunner`
  memoization tuple;
* ``canonical()`` — the stable, documented string form
  (see :func:`canonical_run_name`) exposed by ``cache_stats()["keys"]``
  and embedded in manifests;
* ``identity()`` — the JSON-ready dict the on-disk result store
  (:mod:`repro.exec.store`) hashes into its content address.

Canonical string form (stable; serialization-safe)::

    <workload>:<build>:<config>:seed=<seed>:scale=<scale>

where ``<build>`` is ``baseline`` / ``dtt`` / ``dtt-watch`` / ``profile``,
suffixed with ``+cfg=<12-hex>`` when a non-default
:class:`~repro.core.config.DttConfig` applies (the hex is a digest of the
full field/value fingerprint, so distinct configurations never alias);
``<config>`` is the machine-configuration name (``-`` for profiles,
which run functionally); and seed/scale print as ``default`` when the
runner's per-workload defaults apply.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.config import DttConfig
from repro.errors import ExecError, UnknownWorkloadError

#: field/value pairs identifying one DttConfig; () means "engine default"
ConfigFingerprint = Tuple[Tuple[str, object], ...]

#: scalar types a DttConfig field may hold and still be fingerprintable
_SCALAR_TYPES = (bool, int, float, str, type(None))


def config_fingerprint(config: Optional[DttConfig]) -> ConfigFingerprint:
    """Every field of ``config`` as sorted-stable (name, value) pairs.

    Derived automatically from ``DttConfig.__slots__`` so a newly added
    configuration knob can never be silently omitted from memoization
    keys or store addresses (the failure mode of a hand-maintained field
    list).  Fails loudly instead of degrading: a config class without
    ``__slots__`` or with a non-scalar field raises :class:`ExecError`.
    """
    if config is None:
        return ()
    slots = getattr(type(config), "__slots__", None)
    if not slots:
        raise ExecError(
            f"{type(config).__name__} defines no __slots__; cannot derive "
            "a complete configuration fingerprint"
        )
    fields = []
    for name in slots:
        value = getattr(config, name)  # AttributeError = incomplete config
        if not isinstance(value, _SCALAR_TYPES):
            raise ExecError(
                f"DttConfig field {name!r} holds non-scalar {value!r}; "
                "extend config_fingerprint before caching such configs"
            )
        fields.append((name, value))
    return tuple(fields)


def fingerprint_token(fingerprint: ConfigFingerprint) -> str:
    """Short stable digest of a config fingerprint ('' for default)."""
    if not fingerprint:
        return ""
    canonical = json.dumps([[n, v] for n, v in fingerprint],
                           sort_keys=False, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def _fmt_default(value) -> str:
    return "default" if value is None else str(value)


def canonical_run_name(
    workload: str,
    build: str,
    config_name: Optional[str],
    fingerprint: ConfigFingerprint,
    seed: Optional[int],
    scale: Optional[int],
) -> str:
    """The documented ``workload:build:config:seed:scale`` string form."""
    token = fingerprint_token(fingerprint)
    if token:
        build = f"{build}+cfg={token}"
    return (f"{workload}:{build}:{config_name or '-'}"
            f":seed={_fmt_default(seed)}:scale={_fmt_default(scale)}")


class RunSpec:
    """One deduplicated unit of simulation work.

    ``kind`` is ``'timed'`` (a :class:`TimingSimulator` run of one build
    under one machine configuration) or ``'profile'`` (a functional run
    under both redundancy analyzers).  Instances are immutable value
    objects: hashable, comparable, and losslessly round-trippable through
    ``as_dict``/``from_dict`` (which is how they cross process
    boundaries to pool workers).
    """

    __slots__ = ("kind", "workload", "build", "config_name", "dtt_fields",
                 "seed", "scale")

    def __init__(self, kind: str, workload: str, build: str,
                 config_name: Optional[str], dtt_fields: ConfigFingerprint,
                 seed: Optional[int], scale: Optional[int]):
        if kind not in ("timed", "profile"):
            raise ExecError(f"unknown RunSpec kind {kind!r}")
        self.kind = kind
        self.workload = workload
        self.build = build
        self.config_name = config_name
        self.dtt_fields = tuple(tuple(pair) for pair in dtt_fields)
        self.seed = seed
        self.scale = scale

    # -- constructors ---------------------------------------------------------

    @classmethod
    def for_timed(cls, workload: str, build: str = "baseline",
                  config_name: str = "smt2",
                  dtt_config: Optional[DttConfig] = None,
                  seed: Optional[int] = None,
                  scale: Optional[int] = None) -> "RunSpec":
        return cls("timed", workload, build, config_name,
                   config_fingerprint(dtt_config), seed, scale)

    @classmethod
    def for_profile(cls, workload: str, seed: Optional[int] = None,
                    scale: Optional[int] = None) -> "RunSpec":
        return cls("profile", workload, "profile", None, (), seed, scale)

    # -- identities -----------------------------------------------------------

    def runner_key(self) -> Tuple:
        """The SuiteRunner memoization key for this run."""
        if self.kind == "profile":
            return (self.workload, self.seed, self.scale)
        return (self.workload, self.build, self.config_name,
                self.dtt_fields, self.seed, self.scale)

    def canonical(self) -> str:
        """The documented ``workload:build:config:seed:scale`` string."""
        return canonical_run_name(self.workload, self.build,
                                  self.config_name, self.dtt_fields,
                                  self.seed, self.scale)

    def identity(self) -> Dict:
        """JSON-ready identity dict (hashed by the result store)."""
        return {
            "kind": self.kind,
            "workload": self.workload,
            "build": self.build,
            "config": self.config_name,
            "dtt_config": [[name, value] for name, value in self.dtt_fields],
            "seed": self.seed,
            "scale": self.scale,
        }

    def phase_name(self) -> str:
        """The runner phase this run's wall-clock accrues under."""
        if self.kind == "profile":
            return f"{self.workload}:profile"
        return f"{self.workload}:{self.build}:{self.config_name}"

    def dtt_config(self) -> Optional[DttConfig]:
        """Reconstruct the DttConfig this spec fingerprints (or None)."""
        if not self.dtt_fields:
            return None
        return DttConfig(**dict(self.dtt_fields))

    def baseline_spec(self) -> Optional["RunSpec"]:
        """The baseline run this (DTT) run is checked against."""
        if self.kind != "timed" or self.build == "baseline":
            return None
        return RunSpec.for_timed(self.workload, "baseline",
                                 self.config_name, None,
                                 self.seed, self.scale)

    # -- serialization --------------------------------------------------------

    def as_dict(self) -> Dict:
        """Picklable/JSON-ready form (see ``from_dict``)."""
        return self.identity()

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunSpec":
        try:
            return cls(
                payload["kind"], payload["workload"], payload["build"],
                payload["config"],
                tuple((name, value) for name, value in payload["dtt_config"]),
                payload["seed"], payload["scale"],
            )
        except (KeyError, TypeError) as error:
            raise ExecError(f"malformed RunSpec payload: {error}") from error

    # -- value semantics ------------------------------------------------------

    def _tuple(self) -> Tuple:
        return (self.kind, self.workload, self.build, self.config_name,
                self.dtt_fields, self.seed, self.scale)

    def __eq__(self, other) -> bool:
        return isinstance(other, RunSpec) and self._tuple() == other._tuple()

    def __hash__(self) -> int:
        return hash(self._tuple())

    def __repr__(self) -> str:
        return f"RunSpec({self.canonical()})"


def resolve_workload(name: str):
    """Workload instance by name: the suite plus the harness extras.

    The extras (``overlap``, ``linefalse``, ``bursty-equake``) are the
    experiment-only workloads E8/E9 time through the runner; they are
    resolvable here so pool workers and stored runs can name any
    workload the harness can.
    """
    from repro.workloads.suite import SUITE

    if name in SUITE:
        return SUITE[name]
    extras = _extra_workloads()
    if name in extras:
        return extras[name]()
    raise UnknownWorkloadError(
        f"unknown workload {name!r}; known: "
        f"{', '.join(list(SUITE) + sorted(extras))}"
    )


def _extra_workloads() -> Dict[str, type]:
    from repro.workloads.ablation import (BurstyEquakeWorkload,
                                          LineFalseWorkload)
    from repro.workloads.overlap import OverlapWorkload

    return {
        OverlapWorkload.name: OverlapWorkload,
        LineFalseWorkload.name: LineFalseWorkload,
        BurstyEquakeWorkload.name: BurstyEquakeWorkload,
    }


class RunPlan:
    """An ordered, deduplicated list of :class:`RunSpec`\\ s with
    provenance (which experiments need each run)."""

    def __init__(self, experiment_ids: Sequence[str],
                 seed: Optional[int] = None, scale: Optional[int] = None):
        self.experiment_ids = tuple(experiment_ids)
        self.seed = seed
        self.scale = scale
        self._specs: List[RunSpec] = []
        self._needed_by: Dict[RunSpec, Set[str]] = {}

    def add(self, spec: RunSpec, experiment_id: str) -> None:
        """Record that ``experiment_id`` needs ``spec`` (dedup on spec)."""
        if spec not in self._needed_by:
            self._needed_by[spec] = set()
            self._specs.append(spec)
        self._needed_by[spec].add(experiment_id)
        baseline = spec.baseline_spec()
        if baseline is not None:
            # a DTT run is always validated against its baseline, so the
            # baseline is implicitly part of the need
            self.add(baseline, experiment_id)

    def needed_by(self, spec: RunSpec) -> Set[str]:
        """Experiment ids that requested ``spec``."""
        return set(self._needed_by.get(spec, ()))

    def canonical_names(self) -> List[str]:
        """Canonical strings of every planned run, in plan order."""
        return [spec.canonical() for spec in self._specs]

    def as_dict(self) -> Dict:
        """JSON-ready description (for ``--json`` surfaces and tests)."""
        return {
            "experiments": list(self.experiment_ids),
            "seed": self.seed,
            "scale": self.scale,
            "runs": [
                {"spec": spec.as_dict(),
                 "canonical": spec.canonical(),
                 "needed_by": sorted(self._needed_by[spec])}
                for spec in self._specs
            ],
        }

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __repr__(self) -> str:
        return (f"RunPlan({len(self._specs)} runs for "
                f"{'+'.join(self.experiment_ids)})")


def build_plan(experiment_ids: Sequence[str], seed: Optional[int] = None,
               scale: Optional[int] = None) -> RunPlan:
    """The deduplicated run matrix for ``experiment_ids`` (or ``'all'``).

    Mirrors exactly the runner-mediated runs each experiment performs,
    so executing the plan then running the experiments serves every
    ``SuiteRunner`` request from the memo (zero re-simulation).
    """
    from repro.core.config import DttConfig
    from repro.harness.experiments import EXPERIMENTS, SENSITIVITY_SUBSET
    from repro.workloads.suite import SUITE

    wanted = []
    for experiment_id in experiment_ids:
        key = experiment_id.upper()
        if key == "ALL":
            wanted = list(EXPERIMENTS)
            break
        if key not in EXPERIMENTS:
            raise ExecError(
                f"cannot plan unknown experiment {experiment_id!r}; "
                f"available: {sorted(EXPERIMENTS)}"
            )
        if key not in wanted:
            wanted.append(key)

    plan = RunPlan(wanted, seed=seed, scale=scale)
    suite = list(SUITE)

    def timed(eid, workload, build="baseline", config="smt2", dtt=None):
        plan.add(RunSpec.for_timed(workload, build, config, dtt, seed, scale),
                 eid)

    for eid in wanted:
        if eid in ("E1", "E2"):
            for name in suite:
                plan.add(RunSpec.for_profile(name, seed, scale), eid)
        elif eid in ("E3", "E4", "E6", "E7"):
            for name in suite:
                timed(eid, name, "dtt")
        elif eid == "E5":
            for name in SENSITIVITY_SUBSET:
                for config in ("smt2", "cmp2", "serial"):
                    timed(eid, name, "dtt", config)
        elif eid == "E8":
            timed(eid, "mcf", "dtt")
            timed(eid, "mcf", "dtt",
                  dtt=DttConfig(same_value_filter=False))
            for granularity in (1, 16):
                timed(eid, "linefalse", "dtt",
                      dtt=DttConfig(granularity=granularity))
            for capacity in (1, 2, 16):
                timed(eid, "bursty-equake", "dtt",
                      dtt=DttConfig(queue_capacity=capacity))
        elif eid == "E9":
            for config in ("smt2", "cmp2", "serial"):
                timed(eid, "overlap", "dtt", config)
    return plan
