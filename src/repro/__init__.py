"""repro — data-triggered threads: runtime, simulator, and evaluation.

A production-quality reproduction of Hung-Wei Tseng and Dean M. Tullsen,
*Data-triggered threads: Eliminating redundant computation* (HPCA 2011).

Three entry points, by audience:

* **Use the model in Python** — :class:`~repro.core.runtime.DttRuntime`:
  tracked arrays + decorated support threads + ``tcheck`` consume points.
  See ``examples/quickstart.py``.
* **Run programs on the simulated machine** — build DTIR programs with
  :class:`~repro.isa.builder.ProgramBuilder`, execute them functionally
  (:class:`~repro.machine.machine.Machine`) or timed
  (:class:`~repro.timing.system.TimingSimulator`), attach a
  :class:`~repro.core.engine.DttEngine` for the DTT semantics.
* **Reproduce the paper** — ``dtt-harness run all`` (or
  :mod:`repro.harness`) regenerates every table and figure, E1–E8.
"""

from repro.errors import ReproError
from repro.isa import Instruction, Program, ProgramBuilder
from repro.machine import Machine, Memory, run_to_completion
from repro.cache import CacheHierarchy, HierarchyParams
from repro.timing import SystemConfig, TimingSimulator, named_config
from repro.core import (
    DttConfig,
    DttEngine,
    DttRuntime,
    ThreadQueue,
    ThreadRegistry,
    TrackedArray,
    TriggerSpec,
)
from repro.profiling import RedundantLoadProfiler, profile_program
from repro.workloads import SUITE, get_workload, verify_workload
from repro.harness import SuiteRunner, run_experiment

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "Instruction",
    "Program",
    "ProgramBuilder",
    "Machine",
    "Memory",
    "run_to_completion",
    "CacheHierarchy",
    "HierarchyParams",
    "SystemConfig",
    "TimingSimulator",
    "named_config",
    "DttConfig",
    "DttEngine",
    "DttRuntime",
    "ThreadQueue",
    "ThreadRegistry",
    "TrackedArray",
    "TriggerSpec",
    "RedundantLoadProfiler",
    "profile_program",
    "SUITE",
    "get_workload",
    "verify_workload",
    "SuiteRunner",
    "run_experiment",
    "__version__",
]
