"""Interactive-grade machine debugger: breakpoints, watchpoints, stepping.

Authoring DTIR kernels (and DTT conversions of them) benefits hugely from
being able to stop at a PC, watch a memory word, and inspect registers —
the same tooling a real simulator ships.  The debugger drives a
:class:`~repro.machine.machine.Machine` the way the functional runner
does, but checks its break conditions between instructions and supports
post-hoc inspection.

Example::

    dbg = Debugger(machine)
    dbg.add_breakpoint(program.labels["refresh"])
    dbg.add_watchpoint(program.address_of("sum"))
    stop = dbg.run()               # runs until a break condition or halt
    if stop.kind is StopKind.WATCHPOINT:
        print(stop.detail, dbg.read_register(4))

The debugger is synchronous and single-context-focused (the main context)
— support threads launched by a synchronous DTT engine execute inside a
single ``step`` from the debugger's point of view, exactly like a
hardware debugger stepping over a microcoded operation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Union

from repro.errors import MachineError
from repro.machine.context import ContextState
from repro.machine.machine import Machine

Number = Union[int, float]


class StopKind:
    """Why the debugger stopped (string constants, enum-like)."""

    BREAKPOINT = "breakpoint"
    WATCHPOINT = "watchpoint"
    STEPPED = "stepped"
    HALTED = "halted"
    CONDITION = "condition"


class StopEvent:
    """Where and why execution stopped."""

    __slots__ = ("kind", "pc", "detail")

    def __init__(self, kind: str, pc: int, detail: str = ""):
        self.kind = kind
        self.pc = pc
        self.detail = detail

    def __repr__(self) -> str:
        return f"StopEvent({self.kind}, pc={self.pc}, {self.detail!r})"


class Debugger:
    """Breakpoint/watchpoint-driven execution of a machine's main context."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self._breakpoints: Set[int] = set()
        # watched address -> last seen value
        self._watchpoints: Dict[int, Number] = {}
        self._conditions: List[Callable[[Machine], Optional[str]]] = []
        self.instructions_executed = 0

    # -- configuration -----------------------------------------------------------

    def add_breakpoint(self, pc: int) -> None:
        """Stop *before* executing the instruction at ``pc``."""
        if not 0 <= pc < len(self.machine.program):
            raise MachineError(f"breakpoint pc {pc} outside program")
        self._breakpoints.add(pc)

    def remove_breakpoint(self, pc: int) -> None:
        """Drop a breakpoint if present."""
        self._breakpoints.discard(pc)

    def add_breakpoint_at_label(self, label: str) -> int:
        """Breakpoint at a program label; returns the resolved pc."""
        pc = self.machine.program.labels.get(label)
        if pc is None:
            raise MachineError(f"unknown label {label!r}")
        self.add_breakpoint(pc)
        return pc

    def add_watchpoint(self, address: int) -> None:
        """Stop after any instruction that changes the word at ``address``."""
        self._watchpoints[address] = self.machine.memory.peek(address)

    def remove_watchpoint(self, address: int) -> None:
        """Drop a watchpoint if present."""
        self._watchpoints.pop(address, None)

    def add_condition(self, predicate: Callable[[Machine], Optional[str]]) -> None:
        """Stop when ``predicate(machine)`` returns a truthy description."""
        self._conditions.append(predicate)

    # -- execution ------------------------------------------------------------------

    def step(self) -> StopEvent:
        """Execute exactly one main-context instruction."""
        main = self.machine.main_context
        if main.state is ContextState.HALTED:
            return StopEvent(StopKind.HALTED, main.pc, "already halted")
        if main.state is not ContextState.RUNNING:
            raise MachineError(
                f"main context is {main.state.value}; the debugger drives "
                "synchronous execution only"
            )
        self.machine.step(main)
        self.instructions_executed += 1
        stop = self._check_after_step()
        if stop is not None:
            return stop
        if main.state is ContextState.HALTED:
            return StopEvent(StopKind.HALTED, main.pc, "program halted")
        return StopEvent(StopKind.STEPPED, main.pc)

    def run(self, max_instructions: int = 10_000_000) -> StopEvent:
        """Run until a break condition fires or the program halts."""
        main = self.machine.main_context
        for _ in range(max_instructions):
            if main.state is ContextState.HALTED:
                return StopEvent(StopKind.HALTED, main.pc, "program halted")
            if main.pc in self._breakpoints:
                return StopEvent(StopKind.BREAKPOINT, main.pc,
                                 f"breakpoint at pc {main.pc}")
            event = self.step()
            if event.kind in (StopKind.WATCHPOINT, StopKind.CONDITION,
                              StopKind.HALTED):
                return event
        raise MachineError(
            f"debugger ran {max_instructions} instructions without stopping"
        )

    def continue_(self, max_instructions: int = 10_000_000) -> StopEvent:
        """Resume past a breakpoint the run() just reported."""
        main = self.machine.main_context
        if main.state is ContextState.RUNNING and main.pc in self._breakpoints:
            event = self.step()
            if event.kind in (StopKind.WATCHPOINT, StopKind.CONDITION,
                              StopKind.HALTED):
                return event
        return self.run(max_instructions)

    def _check_after_step(self) -> Optional[StopEvent]:
        main = self.machine.main_context
        for address, last in self._watchpoints.items():
            current = self.machine.memory.peek(address)
            if current != last:
                self._watchpoints[address] = current
                return StopEvent(
                    StopKind.WATCHPOINT, main.pc,
                    f"mem[{address}] changed {last!r} -> {current!r}",
                )
        for predicate in self._conditions:
            detail = predicate(self.machine)
            if detail:
                return StopEvent(StopKind.CONDITION, main.pc, str(detail))
        return None

    # -- inspection --------------------------------------------------------------------

    def read_register(self, index: int) -> Number:
        """The main context's register value."""
        return self.machine.main_context.regs[index]

    def read_memory(self, address: int, count: int = 1) -> List[Number]:
        """``count`` words starting at ``address`` (uncounted reads)."""
        return self.machine.memory.read_block(address, count)

    def current_instruction(self):
        """The instruction the main context would execute next."""
        pc = self.machine.main_context.pc
        if 0 <= pc < len(self.machine.program):
            return self.machine.program.instructions[pc]
        return None

    def where(self) -> str:
        """Human-readable location: pc, function, disassembly."""
        from repro.isa.assembler import format_instruction

        main = self.machine.main_context
        pc = main.pc
        function = self.machine.program.function_at(pc)
        instruction = self.current_instruction()
        text = format_instruction(instruction) if instruction else "<end>"
        location = function.name if function else "<toplevel>"
        return f"pc {pc} in {location}: {text}"

    def __repr__(self) -> str:
        return (
            f"Debugger({len(self._breakpoints)} breakpoints, "
            f"{len(self._watchpoints)} watchpoints, "
            f"{self.instructions_executed} instructions)"
        )
