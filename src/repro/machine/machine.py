"""The functional DTIR machine.

:class:`Machine` executes one instruction per :meth:`Machine.step` call on
a chosen context.  It performs *complete, immediate* architectural effects
— the timing model in :mod:`repro.timing` decides *when* steps happen and
what they cost, and the DTT engine in :mod:`repro.core` decides what the
triggering-store and tcheck extensions do.

``step`` returns ``(instruction, address, taken)``:

* ``address`` — the data-memory word touched (loads/stores), else ``None``
* ``taken`` — branch outcome for conditional branches, else ``None``

which is everything the timing model and profilers need without
re-decoding.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import (
    ContextError,
    ExecutionFault,
    ExecutionLimitExceeded,
    ProgramValidationError,
)
from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.machine.context import Context, ContextRole, ContextState
from repro.machine.loader import load_program
from repro.machine.memory import Memory

Number = Union[int, float]
StepResult = Tuple[Instruction, Optional[int], Optional[bool]]


def _trunc_div(b: int, c: int) -> int:
    """C-style integer division (truncate toward zero)."""
    if c == 0:
        raise ExecutionFault("integer division by zero")
    q = abs(b) // abs(c)
    return q if (b >= 0) == (c >= 0) else -q


class Machine:
    """A multi-context DTIR machine over one program and one memory."""

    def __init__(
        self,
        program: Program,
        memory: Optional[Memory] = None,
        num_contexts: int = 4,
        contexts_per_core: Optional[int] = None,
        max_instructions: int = 20_000_000,
    ):
        if not program.finalized:
            raise ProgramValidationError("machine requires a finalized program")
        if num_contexts < 1:
            raise ContextError("machine needs at least one context")
        self.program = program
        self.memory = memory if memory is not None else Memory()
        per_core = contexts_per_core or num_contexts
        self.contexts: List[Context] = [
            Context(i, core_id=i // per_core) for i in range(num_contexts)
        ]
        self.contexts_per_core = per_core
        self.num_cores = (num_contexts + per_core - 1) // per_core
        self.output: List[Number] = []
        self.max_instructions = max_instructions
        self.instructions_executed = 0
        self.main_instructions = 0
        self.support_instructions = 0
        #: installed DTT engine, or None for the baseline machine
        self.dtt_engine = None
        self._observers: List = []
        self._instructions = program.instructions  # hot-path alias
        load_program(program, self.memory)
        self.main_context.start_main(program.entry_pc)

    # -- wiring ------------------------------------------------------------------

    @property
    def main_context(self) -> Context:
        return self.contexts[0]

    def attach_engine(self, engine) -> None:
        """Install a DTT engine; the engine is told about the machine."""
        self.dtt_engine = engine
        engine.bind(self)

    def add_observer(self, observer) -> None:
        """Attach a :class:`~repro.machine.events.MachineObserver`."""
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Detach a previously attached observer."""
        self._observers.remove(observer)

    def idle_contexts(self) -> List[Context]:
        """Contexts available for support-thread dispatch."""
        return [c for c in self.contexts if c.state is ContextState.IDLE]

    # -- execution ------------------------------------------------------------------

    def step(self, ctx: Context) -> StepResult:
        """Execute one instruction on ``ctx``; it must be RUNNING."""
        if ctx.state is not ContextState.RUNNING:
            raise ContextError(
                f"context {ctx.context_id} is {ctx.state.value}, cannot step"
            )
        self.instructions_executed += 1
        if self.instructions_executed > self.max_instructions:
            raise ExecutionLimitExceeded(
                f"exceeded {self.max_instructions} dynamic instructions"
            )
        ctx.instruction_count += 1
        if ctx.role is ContextRole.MAIN:
            self.main_instructions += 1
        else:
            self.support_instructions += 1
        pc = ctx.pc
        try:
            instruction = self._instructions[pc]
        except IndexError:
            raise ExecutionFault(
                f"context {ctx.context_id} ran off the end of the program "
                f"(pc={pc})"
            ) from None
        address, taken = _DISPATCH[instruction.op](self, ctx, instruction, pc)
        if self._observers:
            for observer in self._observers:
                observer.on_instruction(ctx, pc, instruction)
        return (instruction, address, taken)

    # -- observer notification (called from handlers) ------------------------------

    def _notify_load(self, ctx, pc, address, value) -> None:
        for observer in self._observers:
            observer.on_load(ctx, pc, address, value)

    def _notify_store(self, ctx, pc, address, old, new, triggering) -> None:
        for observer in self._observers:
            observer.on_store(ctx, pc, address, old, new, triggering)

    def _notify_branch(self, ctx, pc, taken, target) -> None:
        for observer in self._observers:
            observer.on_branch(ctx, pc, taken, target)

    def _notify_halt(self, ctx) -> None:
        for observer in self._observers:
            observer.on_halt(ctx)

    # -- checkpointing -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Capture the complete architectural state.

        Covers memory, every context's registers/PC/call stack/state, the
        output buffer, and the instruction counters.  Does *not* cover an
        attached DTT engine's state (pending queue, in-flight threads) —
        snapshot at quiescent points (e.g. from a debugger stop with no
        support thread running), which is also the only state a hardware
        checkpoint would take.
        """
        return {
            "memory": self.memory.snapshot(),
            "contexts": [
                {
                    "regs": list(ctx.regs),
                    "pc": ctx.pc,
                    "call_stack": list(ctx.call_stack),
                    "state": ctx.state,
                    "role": ctx.role,
                    "thread_name": ctx.thread_name,
                    "waiting_on": ctx.waiting_on,
                    "instruction_count": ctx.instruction_count,
                    "busy_until": ctx.busy_until,
                }
                for ctx in self.contexts
            ],
            "output": list(self.output),
            "instructions_executed": self.instructions_executed,
            "main_instructions": self.main_instructions,
            "support_instructions": self.support_instructions,
        }

    def restore(self, snapshot: dict) -> None:
        """Rewind to a state captured by :meth:`snapshot`."""
        self.memory.restore(snapshot["memory"])
        for ctx, saved in zip(self.contexts, snapshot["contexts"]):
            ctx.regs[:] = saved["regs"]
            ctx.pc = saved["pc"]
            ctx.call_stack = list(saved["call_stack"])
            ctx.state = saved["state"]
            ctx.role = saved["role"]
            ctx.thread_name = saved["thread_name"]
            ctx.waiting_on = saved["waiting_on"]
            ctx.instruction_count = saved["instruction_count"]
            ctx.busy_until = saved["busy_until"]
        self.output[:] = snapshot["output"]
        self.instructions_executed = snapshot["instructions_executed"]
        self.main_instructions = snapshot["main_instructions"]
        self.support_instructions = snapshot["support_instructions"]

    def __repr__(self) -> str:
        return (
            f"Machine({len(self.contexts)} contexts, "
            f"{self.instructions_executed} instructions executed, "
            f"main={self.main_context.state.value})"
        )


# ---------------------------------------------------------------------------
# Instruction handlers.  Each takes (machine, ctx, instruction, pc), performs
# the architectural effect including the PC update, and returns
# (memory_address_or_None, branch_taken_or_None).
# ---------------------------------------------------------------------------


def _h_li(m, ctx, i, pc):
    ctx.regs[i.a] = i.b
    ctx.pc = pc + 1
    return (None, None)


def _h_mov(m, ctx, i, pc):
    ctx.regs[i.a] = ctx.regs[i.b]
    ctx.pc = pc + 1
    return (None, None)


def _alu_rrr(fn):
    def handler(m, ctx, i, pc):
        regs = ctx.regs
        regs[i.a] = fn(regs[i.b], regs[i.c])
        ctx.pc = pc + 1
        return (None, None)

    return handler


def _alu_rri(fn):
    def handler(m, ctx, i, pc):
        regs = ctx.regs
        regs[i.a] = fn(regs[i.b], i.c)
        ctx.pc = pc + 1
        return (None, None)

    return handler


def _alu_rr(fn):
    def handler(m, ctx, i, pc):
        regs = ctx.regs
        regs[i.a] = fn(regs[i.b])
        ctx.pc = pc + 1
        return (None, None)

    return handler


def _fsqrt(b):
    value = float(b)
    if value < 0.0:
        raise ExecutionFault(f"fsqrt of negative value {value}")
    return value ** 0.5


def _fdiv(b, c):
    denominator = float(c)
    if denominator == 0.0:
        raise ExecutionFault("floating-point division by zero")
    return float(b) / denominator


def _h_ld(m, ctx, i, pc):
    address = ctx.regs[i.b] + i.c
    value = m.memory.load(address)
    ctx.regs[i.a] = value
    ctx.pc = pc + 1
    if m._observers:
        m._notify_load(ctx, pc, address, value)
    return (address, None)


def _h_ldx(m, ctx, i, pc):
    address = ctx.regs[i.b] + ctx.regs[i.c]
    value = m.memory.load(address)
    ctx.regs[i.a] = value
    ctx.pc = pc + 1
    if m._observers:
        m._notify_load(ctx, pc, address, value)
    return (address, None)


def _do_store(m, ctx, i, pc, address, triggering):
    new_value = ctx.regs[i.a]
    old_value = m.memory.peek(address)
    m.memory.store(address, new_value)
    ctx.pc = pc + 1
    if triggering and m.dtt_engine is not None:
        m.dtt_engine.on_triggering_store(ctx, pc, address, old_value, new_value)
    if m._observers:
        m._notify_store(ctx, pc, address, old_value, new_value, triggering)
    return (address, None)


def _h_st(m, ctx, i, pc):
    return _do_store(m, ctx, i, pc, ctx.regs[i.b] + i.c, False)


def _h_stx(m, ctx, i, pc):
    return _do_store(m, ctx, i, pc, ctx.regs[i.b] + ctx.regs[i.c], False)


def _h_tst(m, ctx, i, pc):
    return _do_store(m, ctx, i, pc, ctx.regs[i.b] + i.c, True)


def _h_tstx(m, ctx, i, pc):
    return _do_store(m, ctx, i, pc, ctx.regs[i.b] + ctx.regs[i.c], True)


def _branch_rrl(fn):
    def handler(m, ctx, i, pc):
        taken = fn(ctx.regs[i.a], ctx.regs[i.b])
        target = i.target if taken else pc + 1
        ctx.pc = target
        if m._observers:
            m._notify_branch(ctx, pc, taken, target)
        return (None, taken)

    return handler


def _branch_rl(fn):
    def handler(m, ctx, i, pc):
        taken = fn(ctx.regs[i.a])
        target = i.target if taken else pc + 1
        ctx.pc = target
        if m._observers:
            m._notify_branch(ctx, pc, taken, target)
        return (None, taken)

    return handler


def _h_jmp(m, ctx, i, pc):
    ctx.pc = i.target
    return (None, None)


def _h_call(m, ctx, i, pc):
    ctx.call_stack.append(pc + 1)
    if len(ctx.call_stack) > 10_000:
        raise ExecutionFault("call stack overflow (runaway recursion?)")
    ctx.pc = i.target
    return (None, None)


def _h_ret(m, ctx, i, pc):
    if not ctx.call_stack:
        raise ExecutionFault(f"ret with empty call stack at pc {pc}")
    ctx.pc = ctx.call_stack.pop()
    return (None, None)


def _h_tcheck(m, ctx, i, pc):
    ctx.pc = pc + 1
    if m.dtt_engine is not None:
        m.dtt_engine.on_tcheck(ctx, int(i.a))
    return (None, None)


def _h_treturn(m, ctx, i, pc):
    ctx.pc = pc + 1
    if m.dtt_engine is None:
        raise ExecutionFault(f"treturn without a DTT engine at pc {pc}")
    m.dtt_engine.on_treturn(ctx)
    return (None, None)


def _h_out(m, ctx, i, pc):
    m.output.append(ctx.regs[i.a])
    ctx.pc = pc + 1
    return (None, None)


def _h_nop(m, ctx, i, pc):
    ctx.pc = pc + 1
    return (None, None)


def _h_halt(m, ctx, i, pc):
    if ctx.role is not ContextRole.MAIN:
        raise ExecutionFault(
            f"support thread executed halt at pc {pc}; use treturn"
        )
    ctx.state = ContextState.HALTED
    ctx.pc = pc + 1
    m._notify_halt(ctx)
    return (None, None)


_DISPATCH = {
    "li": _h_li,
    "mov": _h_mov,
    "add": _alu_rrr(lambda b, c: b + c),
    "sub": _alu_rrr(lambda b, c: b - c),
    "mul": _alu_rrr(lambda b, c: b * c),
    "idiv": _alu_rrr(lambda b, c: _trunc_div(int(b), int(c))),
    "imod": _alu_rrr(lambda b, c: int(b) - _trunc_div(int(b), int(c)) * int(c)),
    "and_": _alu_rrr(lambda b, c: int(b) & int(c)),
    "or_": _alu_rrr(lambda b, c: int(b) | int(c)),
    "xor": _alu_rrr(lambda b, c: int(b) ^ int(c)),
    "shl": _alu_rrr(lambda b, c: int(b) << int(c)),
    "shr": _alu_rrr(lambda b, c: int(b) >> int(c)),
    "slt": _alu_rrr(lambda b, c: 1 if b < c else 0),
    "sle": _alu_rrr(lambda b, c: 1 if b <= c else 0),
    "sgt": _alu_rrr(lambda b, c: 1 if b > c else 0),
    "sge": _alu_rrr(lambda b, c: 1 if b >= c else 0),
    "seq": _alu_rrr(lambda b, c: 1 if b == c else 0),
    "sne": _alu_rrr(lambda b, c: 1 if b != c else 0),
    "addi": _alu_rri(lambda b, c: b + c),
    "subi": _alu_rri(lambda b, c: b - c),
    "muli": _alu_rri(lambda b, c: b * c),
    "andi": _alu_rri(lambda b, c: int(b) & int(c)),
    "ori": _alu_rri(lambda b, c: int(b) | int(c)),
    "xori": _alu_rri(lambda b, c: int(b) ^ int(c)),
    "shli": _alu_rri(lambda b, c: int(b) << int(c)),
    "shri": _alu_rri(lambda b, c: int(b) >> int(c)),
    "slti": _alu_rri(lambda b, c: 1 if b < c else 0),
    "sgti": _alu_rri(lambda b, c: 1 if b > c else 0),
    "seqi": _alu_rri(lambda b, c: 1 if b == c else 0),
    "fadd": _alu_rrr(lambda b, c: float(b) + float(c)),
    "fsub": _alu_rrr(lambda b, c: float(b) - float(c)),
    "fmul": _alu_rrr(lambda b, c: float(b) * float(c)),
    "fdiv": _alu_rrr(_fdiv),
    "fsqrt": _alu_rr(_fsqrt),
    "fabs": _alu_rr(lambda b: abs(float(b))),
    "fneg": _alu_rr(lambda b: -float(b)),
    "itof": _alu_rr(float),
    "ftoi": _alu_rr(int),
    "ld": _h_ld,
    "ldx": _h_ldx,
    "st": _h_st,
    "stx": _h_stx,
    "tst": _h_tst,
    "tstx": _h_tstx,
    "tcheck": _h_tcheck,
    "treturn": _h_treturn,
    "beq": _branch_rrl(lambda a, b: a == b),
    "bne": _branch_rrl(lambda a, b: a != b),
    "blt": _branch_rrl(lambda a, b: a < b),
    "ble": _branch_rrl(lambda a, b: a <= b),
    "bgt": _branch_rrl(lambda a, b: a > b),
    "bge": _branch_rrl(lambda a, b: a >= b),
    "beqz": _branch_rl(lambda a: a == 0),
    "bnez": _branch_rl(lambda a: a != 0),
    "jmp": _h_jmp,
    "call": _h_call,
    "ret": _h_ret,
    "out": _h_out,
    "nop": _h_nop,
    "halt": _h_halt,
}


def run_to_completion(machine: Machine) -> List[Number]:
    """Run the main context until it halts; returns the output buffer.

    This is the *functional* driver: support threads are executed
    synchronously by the engine (at trigger or tcheck time per its policy),
    so the main context is never left blocked.  Use
    :class:`repro.timing.system.TimingSimulator` for timed runs.
    """
    main = machine.main_context
    while main.state is not ContextState.HALTED:
        if main.state is ContextState.RUNNING:
            machine.step(main)
        elif main.state is ContextState.BLOCKED:
            raise ContextError(
                "main context blocked during a functional run; the DTT "
                "engine must run in synchronous mode (deferred=False)"
            )
        else:
            raise ContextError(
                f"main context in unexpected state {main.state.value}"
            )
    return machine.output
