"""The functional DTIR machine.

:class:`Machine` executes one instruction per :meth:`Machine.step` call on
a chosen context.  It performs *complete, immediate* architectural effects
— the timing model in :mod:`repro.timing` decides *when* steps happen and
what they cost, and the DTT engine in :mod:`repro.core` decides what the
triggering-store and tcheck extensions do.

``step`` returns ``(instruction, address, taken)``:

* ``address`` — the data-memory word touched (loads/stores), else ``None``
* ``taken`` — branch outcome for conditional branches, else ``None``

which is everything the timing model and profilers need without
re-decoding.

Execution is three-tier:

* :meth:`Machine.step` — exact single-step mode (the ``legacy`` tier).
  The program is pre-decoded once into a dense ``(handler, instruction)``
  table, so a step is a list index plus one call; there are no per-step
  dict lookups or isinstance re-checks.  The debugger, the timing model,
  and machine observers (profilers) all drive this tier.
* the ``closure`` tier — batch mode for functional runs.  The program is
  compiled once per machine into per-PC closures ("thunks",
  :mod:`repro.machine.fastpath`) with operands, memory, and the output
  buffer bound in; an inner loop then dispatches thousands of
  instructions per iteration of the accounting code.
* the ``superblock`` tier (the default for :meth:`Machine.run`) —
  straight-line runs are exec-compiled into single Python functions
  (:mod:`repro.machine.superblock`) that keep registers in locals and
  batch memory counters per block, side-exiting to the closure tier
  whenever a guard fails.

All tiers produce identical results — architectural state, counters,
faults, and limits are byte-for-byte the same; pick with
``Machine.run(tier=...)``.  When machine observers are attached, ``run``
transparently falls back to single-stepping.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import (
    ContextError,
    ExecutionFault,
    ExecutionLimitExceeded,
    ProgramValidationError,
)
from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.machine.context import Context, ContextRole, ContextState
from repro.machine.loader import load_program
from repro.machine.memory import Memory

Number = Union[int, float]
StepResult = Tuple[Instruction, Optional[int], Optional[bool]]

#: batch size of the fast loop: accounting (instruction counters, the
#: dynamic-instruction limit, the step budget) is reconciled once per chunk
_CHUNK = 16384

#: the selectable execution tiers of :meth:`Machine.run`
TIERS = ("legacy", "closure", "superblock")


def _trunc_div(b: int, c: int) -> int:
    """C-style integer division (truncate toward zero)."""
    if c == 0:
        raise ExecutionFault("integer division by zero")
    q = abs(b) // abs(c)
    return q if (b >= 0) == (c >= 0) else -q


class Machine:
    """A multi-context DTIR machine over one program and one memory."""

    #: execution tier :meth:`run` uses when none is passed; settable per
    #: instance (or globally, e.g. by ``dtt-harness --tier``)
    default_tier = "superblock"

    def __init__(
        self,
        program: Program,
        memory: Optional[Memory] = None,
        num_contexts: int = 4,
        contexts_per_core: Optional[int] = None,
        max_instructions: int = 20_000_000,
    ):
        if not program.finalized:
            raise ProgramValidationError("machine requires a finalized program")
        if num_contexts < 1:
            raise ContextError("machine needs at least one context")
        self.program = program
        self.memory = memory if memory is not None else Memory()
        per_core = contexts_per_core or num_contexts
        self.contexts: List[Context] = [
            Context(i, core_id=i // per_core) for i in range(num_contexts)
        ]
        self.contexts_per_core = per_core
        self.num_cores = (num_contexts + per_core - 1) // per_core
        self.output: List[Number] = []
        self.max_instructions = max_instructions
        self.instructions_executed = 0
        self.main_instructions = 0
        self.support_instructions = 0
        #: installed DTT engine, or None for the baseline machine
        self.dtt_engine = None
        self._observers: List = []
        self._instructions = program.instructions  # hot-path alias
        # pre-decode: one (handler, instruction) pair per PC, so step() is
        # a list index + one call with no per-step dict lookup on the op
        dispatch = _DISPATCH
        self._decoded = [
            (dispatch[ins.op], ins) for ins in program.instructions
        ]
        # per-PC closures for the batch loop; compiled lazily by run()
        self._thunks = None
        # superblock tier state: (block table, report cell, budget cell),
        # installed lazily by the first superblock-tier run()
        self._superblocks = None
        load_program(program, self.memory)
        self.main_context.start_main(program.entry_pc)

    # -- wiring ------------------------------------------------------------------

    @property
    def main_context(self) -> Context:
        return self.contexts[0]

    def attach_engine(self, engine) -> None:
        """Install a DTT engine; the engine is told about the machine."""
        self.dtt_engine = engine
        engine.bind(self)
        # thunks and superblocks bind machine surroundings at compile
        # time; recompile after any rewiring so the batch loop can never
        # run against stale state
        self._thunks = None
        self._superblocks = None

    def add_observer(self, observer) -> None:
        """Attach a :class:`~repro.machine.events.MachineObserver`."""
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Detach a previously attached observer."""
        self._observers.remove(observer)

    def idle_contexts(self) -> List[Context]:
        """Contexts available for support-thread dispatch."""
        return [c for c in self.contexts if c.state is ContextState.IDLE]

    # -- execution ------------------------------------------------------------------

    def step(self, ctx: Context) -> StepResult:
        """Execute one instruction on ``ctx``; it must be RUNNING."""
        if ctx.state is not ContextState.RUNNING:
            raise ContextError(
                f"context {ctx.context_id} is {ctx.state.value}, cannot step"
            )
        self.instructions_executed += 1
        if self.instructions_executed > self.max_instructions:
            raise ExecutionLimitExceeded(
                f"exceeded {self.max_instructions} dynamic instructions"
            )
        ctx.instruction_count += 1
        if ctx.role is ContextRole.MAIN:
            self.main_instructions += 1
        else:
            self.support_instructions += 1
        pc = ctx.pc
        try:
            handler, instruction = self._decoded[pc]
        except IndexError:
            raise ExecutionFault(
                f"context {ctx.context_id} ran off the end of the program "
                f"(pc={pc})"
            ) from None
        address, taken = handler(self, ctx, instruction, pc)
        if self._observers:
            for observer in self._observers:
                observer.on_instruction(ctx, pc, instruction)
        return (instruction, address, taken)

    def run(self, ctx: Optional[Context] = None,
            max_steps: Optional[int] = None,
            tier: Optional[str] = None) -> int:
        """Batch-execute ``ctx`` (default: the main context).

        Runs until the context leaves RUNNING (halt, block, treturn), the
        optional ``max_steps`` budget is spent, or a fault/limit raises.
        Returns the number of instructions retired *on this context* (a
        synchronous engine may retire further instructions on support
        contexts; those are counted in the machine totals as usual).

        ``tier`` picks the execution tier (one of :data:`TIERS`; default
        :attr:`default_tier`).  Architectural results, counters, faults,
        and the dynamic instruction limit behave exactly as an equivalent
        ``step()`` loop on every tier; when machine observers are
        attached (profilers, tracers needing per-instruction callbacks)
        this transparently single-steps.
        """
        if ctx is None:
            ctx = self.main_context
        if ctx.state is not ContextState.RUNNING:
            raise ContextError(
                f"context {ctx.context_id} is {ctx.state.value}, cannot step"
            )
        if tier is None:
            tier = self.default_tier
        if tier not in TIERS:
            raise ValueError(
                f"unknown execution tier {tier!r} (choose from {TIERS})"
            )
        if self._observers or tier == "legacy":
            return self._run_slow(ctx, max_steps)
        if tier == "superblock":
            return self._run_superblock(ctx, max_steps)
        return self._run_closure(ctx, max_steps)

    def _run_closure(self, ctx: Context, max_steps: Optional[int]) -> int:
        """The closure-thunk batch driver behind :meth:`run`."""
        table = self._thunks
        if table is None:
            table = self._build_thunks()
        size = len(table)
        running_main = ctx.role is ContextRole.MAIN
        budget = -1 if max_steps is None else max_steps
        total = 0
        pc = ctx.pc
        while True:
            if budget >= 0 and total >= budget:
                break
            headroom = self.max_instructions - self.instructions_executed
            if headroom <= _CHUNK:
                # near the dynamic-instruction limit: single-step the rest
                # so ExecutionLimitExceeded fires on exactly the same
                # instruction as the legacy loop
                ctx.pc = pc
                remaining = None if budget < 0 else budget - total
                return total + self._run_slow(ctx, remaining)
            chunk = _CHUNK
            if budget >= 0 and budget - total < chunk:
                chunk = budget - total
            n = 0
            try:
                for n in range(1, chunk + 1):
                    pc = table[pc](ctx)
                    if pc < 0:
                        break
            except BaseException as exc:
                # the faulting instruction is counted, as in step()
                self.instructions_executed += n
                ctx.instruction_count += n
                if running_main:
                    self.main_instructions += n
                else:
                    self.support_instructions += n
                if exc.__class__ is IndexError and pc >= size:
                    ctx.pc = pc
                    raise ExecutionFault(
                        f"context {ctx.context_id} ran off the end of the "
                        f"program (pc={pc})"
                    ) from None
                if not getattr(table[pc], "_legacy", False):
                    # specialized thunks never touch ctx.pc; resync it to
                    # the faulting instruction (legacy thunks already left
                    # ctx.pc exactly as their handler did)
                    ctx.pc = pc
                raise
            self.instructions_executed += n
            ctx.instruction_count += n
            if running_main:
                self.main_instructions += n
            else:
                self.support_instructions += n
            total += n
            if pc >= 0:
                continue  # full chunk retired; reconcile and keep going
            if pc == -1:
                break  # context left RUNNING; its handler set ctx.pc
            # a legacy-handler thunk ran (engine hook, possible nested
            # execution): decode the continuation PC and re-budget
            pc = -2 - pc
        if pc >= 0:
            ctx.pc = pc
        return total

    def _run_superblock(self, ctx: Context,
                        max_steps: Optional[int]) -> int:
        """The superblock batch driver behind :meth:`run`.

        Dispatches compiled block functions at block entries and falls
        back to the closure thunks everywhere else (block interiors after
        a side exit, boundary opcodes, uncompiled PCs).  Accounting is
        identical to :meth:`_run_closure`: compiled blocks report their
        retired count through the shared cell, never exceed the chunk
        budget passed in, and reconcile memory counters themselves on
        every exit path.
        """
        table = self._thunks
        if table is None:
            table = self._build_thunks()
        superblocks = self._superblocks
        if superblocks is None:
            superblocks = self._build_superblocks()
        sb_table, cell, budget_cell = superblocks
        size = len(table)
        running_main = ctx.role is ContextRole.MAIN
        budget = -1 if max_steps is None else max_steps
        total = 0
        pc = ctx.pc
        while True:
            if budget >= 0 and total >= budget:
                break
            headroom = self.max_instructions - self.instructions_executed
            if headroom <= _CHUNK:
                # near the dynamic-instruction limit: single-step the rest
                # so ExecutionLimitExceeded fires on exactly the same
                # instruction as the legacy loop
                ctx.pc = pc
                remaining = None if budget < 0 else budget - total
                return total + self._run_slow(ctx, remaining)
            chunk = _CHUNK
            if budget >= 0 and budget - total < chunk:
                chunk = budget - total
            n = 0
            try:
                while n < chunk:
                    fn = sb_table[pc]  # IndexError: ran off the end
                    if fn is not None:
                        budget_cell[0] = chunk - n
                        ret = fn(ctx)
                        n += cell[0]
                        if ret >= 0:
                            pc = ret
                            continue
                        # side exit: rerun the guard-failing pc (which
                        # may be the block entry itself) on its thunk
                        pc = -2 - ret
                    n += 1
                    pc = table[pc](ctx)
                    if pc < 0:
                        break
            except BaseException as exc:
                off_end = False
                if cell[1]:
                    # fault inside a compiled block: it already wrote
                    # registers back, reconciled the memory counters,
                    # counted the faulting instruction, and set ctx.pc
                    cell[1] = 0
                    n += cell[0]
                elif exc.__class__ is IndexError and pc >= size:
                    n += 1  # the off-end attempt is counted, as in step()
                    off_end = True
                    ctx.pc = pc
                elif not getattr(table[pc], "_legacy", False):
                    # thunk fault: specialized thunks never touch ctx.pc;
                    # resync it to the faulting instruction (its attempt
                    # was already counted before dispatch)
                    ctx.pc = pc
                self.instructions_executed += n
                ctx.instruction_count += n
                if running_main:
                    self.main_instructions += n
                else:
                    self.support_instructions += n
                if off_end:
                    raise ExecutionFault(
                        f"context {ctx.context_id} ran off the end of the "
                        f"program (pc={pc})"
                    ) from None
                raise
            self.instructions_executed += n
            ctx.instruction_count += n
            if running_main:
                self.main_instructions += n
            else:
                self.support_instructions += n
            total += n
            if pc >= 0:
                continue  # chunk budget spent; reconcile and keep going
            if pc == -1:
                break  # context left RUNNING; its handler set ctx.pc
            # a legacy-handler thunk ran (engine hook, possible nested
            # execution): decode the continuation PC and re-budget
            pc = -2 - pc
        if pc >= 0:
            ctx.pc = pc
        return total

    def _run_slow(self, ctx: Context, max_steps: Optional[int]) -> int:
        """Single-step driver behind :meth:`run` (observer/limit modes)."""
        executed = 0
        step = self.step
        while ctx.state is ContextState.RUNNING and (
            max_steps is None or executed < max_steps
        ):
            step(ctx)
            executed += 1
        return executed

    def _build_thunks(self):
        from repro.machine.fastpath import build_thunks

        table = build_thunks(self)
        self._thunks = table
        return table

    def _build_superblocks(self):
        from repro.machine.superblock import install

        superblocks = install(self)
        self._superblocks = superblocks
        return superblocks

    # -- observer notification (called from handlers) ------------------------------

    def _notify_load(self, ctx, pc, address, value) -> None:
        for observer in self._observers:
            observer.on_load(ctx, pc, address, value)

    def _notify_store(self, ctx, pc, address, old, new, triggering) -> None:
        for observer in self._observers:
            observer.on_store(ctx, pc, address, old, new, triggering)

    def _notify_branch(self, ctx, pc, taken, target) -> None:
        for observer in self._observers:
            observer.on_branch(ctx, pc, taken, target)

    def _notify_halt(self, ctx) -> None:
        for observer in self._observers:
            observer.on_halt(ctx)

    # -- checkpointing -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Capture the complete architectural state.

        Covers memory, every context's registers/PC/call stack/state, the
        output buffer, and the instruction counters.  Does *not* cover an
        attached DTT engine's state (pending queue, in-flight threads) —
        snapshot at quiescent points (e.g. from a debugger stop with no
        support thread running), which is also the only state a hardware
        checkpoint would take.
        """
        return {
            "memory": self.memory.snapshot(),
            "contexts": [
                {
                    "regs": list(ctx.regs),
                    "pc": ctx.pc,
                    "call_stack": list(ctx.call_stack),
                    "state": ctx.state,
                    "role": ctx.role,
                    "thread_name": ctx.thread_name,
                    "waiting_on": ctx.waiting_on,
                    "instruction_count": ctx.instruction_count,
                    "busy_until": ctx.busy_until,
                }
                for ctx in self.contexts
            ],
            "output": list(self.output),
            "instructions_executed": self.instructions_executed,
            "main_instructions": self.main_instructions,
            "support_instructions": self.support_instructions,
        }

    def restore(self, snapshot: dict) -> None:
        """Rewind to a state captured by :meth:`snapshot`."""
        self.memory.restore(snapshot["memory"])
        for ctx, saved in zip(self.contexts, snapshot["contexts"]):
            ctx.regs[:] = saved["regs"]
            ctx.pc = saved["pc"]
            ctx.call_stack = list(saved["call_stack"])
            ctx.state = saved["state"]
            ctx.role = saved["role"]
            ctx.thread_name = saved["thread_name"]
            ctx.waiting_on = saved["waiting_on"]
            ctx.instruction_count = saved["instruction_count"]
            ctx.busy_until = saved["busy_until"]
        self.output[:] = snapshot["output"]
        self.instructions_executed = snapshot["instructions_executed"]
        self.main_instructions = snapshot["main_instructions"]
        self.support_instructions = snapshot["support_instructions"]

    def __repr__(self) -> str:
        return (
            f"Machine({len(self.contexts)} contexts, "
            f"{self.instructions_executed} instructions executed, "
            f"main={self.main_context.state.value})"
        )


# ---------------------------------------------------------------------------
# Instruction handlers.  Each takes (machine, ctx, instruction, pc), performs
# the architectural effect including the PC update, and returns
# (memory_address_or_None, branch_taken_or_None).
# ---------------------------------------------------------------------------


def _h_li(m, ctx, i, pc):
    ctx.regs[i.a] = i.b
    ctx.pc = pc + 1
    return (None, None)


def _h_mov(m, ctx, i, pc):
    ctx.regs[i.a] = ctx.regs[i.b]
    ctx.pc = pc + 1
    return (None, None)


def _alu_rrr(fn):
    def handler(m, ctx, i, pc):
        regs = ctx.regs
        regs[i.a] = fn(regs[i.b], regs[i.c])
        ctx.pc = pc + 1
        return (None, None)

    return handler


def _alu_rri(fn):
    def handler(m, ctx, i, pc):
        regs = ctx.regs
        regs[i.a] = fn(regs[i.b], i.c)
        ctx.pc = pc + 1
        return (None, None)

    return handler


def _alu_rr(fn):
    def handler(m, ctx, i, pc):
        regs = ctx.regs
        regs[i.a] = fn(regs[i.b])
        ctx.pc = pc + 1
        return (None, None)

    return handler


def _fsqrt(b):
    value = float(b)
    if value < 0.0:
        raise ExecutionFault(f"fsqrt of negative value {value}")
    return value ** 0.5


def _fdiv(b, c):
    denominator = float(c)
    if denominator == 0.0:
        raise ExecutionFault("floating-point division by zero")
    return float(b) / denominator


def _h_ld(m, ctx, i, pc):
    address = ctx.regs[i.b] + i.c
    value = m.memory.load(address)
    ctx.regs[i.a] = value
    ctx.pc = pc + 1
    if m._observers:
        m._notify_load(ctx, pc, address, value)
    return (address, None)


def _h_ldx(m, ctx, i, pc):
    address = ctx.regs[i.b] + ctx.regs[i.c]
    value = m.memory.load(address)
    ctx.regs[i.a] = value
    ctx.pc = pc + 1
    if m._observers:
        m._notify_load(ctx, pc, address, value)
    return (address, None)


def _do_store(m, ctx, i, pc, address, triggering):
    new_value = ctx.regs[i.a]
    old_value = m.memory.peek(address)
    m.memory.store(address, new_value)
    ctx.pc = pc + 1
    if triggering and m.dtt_engine is not None:
        m.dtt_engine.on_triggering_store(ctx, pc, address, old_value, new_value)
    if m._observers:
        m._notify_store(ctx, pc, address, old_value, new_value, triggering)
    return (address, None)


def _h_st(m, ctx, i, pc):
    return _do_store(m, ctx, i, pc, ctx.regs[i.b] + i.c, False)


def _h_stx(m, ctx, i, pc):
    return _do_store(m, ctx, i, pc, ctx.regs[i.b] + ctx.regs[i.c], False)


def _h_tst(m, ctx, i, pc):
    return _do_store(m, ctx, i, pc, ctx.regs[i.b] + i.c, True)


def _h_tstx(m, ctx, i, pc):
    return _do_store(m, ctx, i, pc, ctx.regs[i.b] + ctx.regs[i.c], True)


def _branch_rrl(fn):
    def handler(m, ctx, i, pc):
        taken = fn(ctx.regs[i.a], ctx.regs[i.b])
        target = i.target if taken else pc + 1
        ctx.pc = target
        if m._observers:
            m._notify_branch(ctx, pc, taken, target)
        return (None, taken)

    return handler


def _branch_rl(fn):
    def handler(m, ctx, i, pc):
        taken = fn(ctx.regs[i.a])
        target = i.target if taken else pc + 1
        ctx.pc = target
        if m._observers:
            m._notify_branch(ctx, pc, taken, target)
        return (None, taken)

    return handler


def _h_jmp(m, ctx, i, pc):
    ctx.pc = i.target
    return (None, None)


def _h_call(m, ctx, i, pc):
    ctx.call_stack.append(pc + 1)
    if len(ctx.call_stack) > 10_000:
        raise ExecutionFault("call stack overflow (runaway recursion?)")
    ctx.pc = i.target
    return (None, None)


def _h_ret(m, ctx, i, pc):
    if not ctx.call_stack:
        raise ExecutionFault(f"ret with empty call stack at pc {pc}")
    ctx.pc = ctx.call_stack.pop()
    return (None, None)


def _h_tcheck(m, ctx, i, pc):
    ctx.pc = pc + 1
    if m.dtt_engine is not None:
        m.dtt_engine.on_tcheck(ctx, int(i.a))
    return (None, None)


def _h_treturn(m, ctx, i, pc):
    ctx.pc = pc + 1
    if m.dtt_engine is None:
        raise ExecutionFault(f"treturn without a DTT engine at pc {pc}")
    m.dtt_engine.on_treturn(ctx)
    return (None, None)


def _h_out(m, ctx, i, pc):
    m.output.append(ctx.regs[i.a])
    ctx.pc = pc + 1
    return (None, None)


def _h_nop(m, ctx, i, pc):
    ctx.pc = pc + 1
    return (None, None)


def _h_halt(m, ctx, i, pc):
    if ctx.role is not ContextRole.MAIN:
        raise ExecutionFault(
            f"support thread executed halt at pc {pc}; use treturn"
        )
    ctx.state = ContextState.HALTED
    ctx.pc = pc + 1
    m._notify_halt(ctx)
    return (None, None)


# Semantic function tables, keyed by opcode.  Shared with
# repro.machine.fastpath so the specialized thunks apply the *same function
# objects* (including the int()/float() coercions) as the handlers.
_ALU_RRR_FNS = {
    "add": lambda b, c: b + c,
    "sub": lambda b, c: b - c,
    "mul": lambda b, c: b * c,
    "idiv": lambda b, c: _trunc_div(int(b), int(c)),
    "imod": lambda b, c: int(b) - _trunc_div(int(b), int(c)) * int(c),
    "and_": lambda b, c: int(b) & int(c),
    "or_": lambda b, c: int(b) | int(c),
    "xor": lambda b, c: int(b) ^ int(c),
    "shl": lambda b, c: int(b) << int(c),
    "shr": lambda b, c: int(b) >> int(c),
    "slt": lambda b, c: 1 if b < c else 0,
    "sle": lambda b, c: 1 if b <= c else 0,
    "sgt": lambda b, c: 1 if b > c else 0,
    "sge": lambda b, c: 1 if b >= c else 0,
    "seq": lambda b, c: 1 if b == c else 0,
    "sne": lambda b, c: 1 if b != c else 0,
    "fadd": lambda b, c: float(b) + float(c),
    "fsub": lambda b, c: float(b) - float(c),
    "fmul": lambda b, c: float(b) * float(c),
    "fdiv": _fdiv,
}

_ALU_RRI_FNS = {
    "addi": lambda b, c: b + c,
    "subi": lambda b, c: b - c,
    "muli": lambda b, c: b * c,
    "andi": lambda b, c: int(b) & int(c),
    "ori": lambda b, c: int(b) | int(c),
    "xori": lambda b, c: int(b) ^ int(c),
    "shli": lambda b, c: int(b) << int(c),
    "shri": lambda b, c: int(b) >> int(c),
    "slti": lambda b, c: 1 if b < c else 0,
    "sgti": lambda b, c: 1 if b > c else 0,
    "seqi": lambda b, c: 1 if b == c else 0,
}

_ALU_RR_FNS = {
    "fsqrt": _fsqrt,
    "fabs": lambda b: abs(float(b)),
    "fneg": lambda b: -float(b),
    "itof": float,
    "ftoi": int,
}

_BRANCH_RRL_FNS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "ble": lambda a, b: a <= b,
    "bgt": lambda a, b: a > b,
    "bge": lambda a, b: a >= b,
}

_BRANCH_RL_FNS = {
    "beqz": lambda a: a == 0,
    "bnez": lambda a: a != 0,
}

_DISPATCH = {
    "li": _h_li,
    "mov": _h_mov,
    "ld": _h_ld,
    "ldx": _h_ldx,
    "st": _h_st,
    "stx": _h_stx,
    "tst": _h_tst,
    "tstx": _h_tstx,
    "tcheck": _h_tcheck,
    "treturn": _h_treturn,
    "jmp": _h_jmp,
    "call": _h_call,
    "ret": _h_ret,
    "out": _h_out,
    "nop": _h_nop,
    "halt": _h_halt,
}
for _op, _fn in _ALU_RRR_FNS.items():
    _DISPATCH[_op] = _alu_rrr(_fn)
for _op, _fn in _ALU_RRI_FNS.items():
    _DISPATCH[_op] = _alu_rri(_fn)
for _op, _fn in _ALU_RR_FNS.items():
    _DISPATCH[_op] = _alu_rr(_fn)
for _op, _fn in _BRANCH_RRL_FNS.items():
    _DISPATCH[_op] = _branch_rrl(_fn)
for _op, _fn in _BRANCH_RL_FNS.items():
    _DISPATCH[_op] = _branch_rl(_fn)
del _op, _fn


def run_to_completion(machine: Machine,
                      tier: Optional[str] = None) -> List[Number]:
    """Run the main context until it halts; returns the output buffer.

    This is the *functional* driver: support threads are executed
    synchronously by the engine (at trigger or tcheck time per its policy),
    so the main context is never left blocked.  Use
    :class:`repro.timing.system.TimingSimulator` for timed runs.
    ``tier`` picks the :meth:`Machine.run` execution tier.
    """
    main = machine.main_context
    while main.state is not ContextState.HALTED:
        if main.state is ContextState.RUNNING:
            machine.run(main, tier=tier)
        elif main.state is ContextState.BLOCKED:
            raise ContextError(
                "main context blocked during a functional run; the DTT "
                "engine must run in synchronous mode (deferred=False)"
            )
        else:
            raise ContextError(
                f"main context in unexpected state {main.state.value}"
            )
    return machine.output
