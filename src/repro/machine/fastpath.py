"""Fast-path thunk compiler for :meth:`repro.machine.machine.Machine.run`.

``build_thunks(machine)`` lowers the machine's (already finalized) program
into one closure per PC.  A thunk takes the executing context, applies the
instruction's complete architectural effect, and returns the next PC, so
the batch loop in ``Machine.run`` is::

    pc = table[pc](ctx)

with no per-instruction operand decode, opcode dispatch, attribute
traversal, or counter updates (the loop reconciles counters per chunk).

The contract with ``Machine.run``:

* a return value ``>= 0`` is the next PC;
* ``-1`` means the context left the RUNNING state (halt, tcheck block,
  treturn) and its handler already stored the resume PC in ``ctx.pc``;
* ``<= -2`` encodes ``-2 - next_pc`` and is returned by *legacy* thunks —
  ops that call into the original handler because they may touch the DTT
  engine (``tst``/``tstx``/``tcheck``/``treturn``) or context state
  (``halt``).  The encoding forces a chunk boundary so the loop re-reads
  the shared instruction counters after any nested synchronous execution.

Legacy thunks carry a ``_legacy`` attribute so the loop's fault handler
knows ``ctx.pc`` was already maintained by the handler.

Semantics are inherited, not re-implemented: ALU thunks call the same
function objects the single-step handlers use (``machine._ALU_*_FNS``),
and the memory thunks fall back to the original handler for any address
that is not an in-range exact ``int`` — so faults, bool/float address
rejection, and int-subclass handling match the slow path bit for bit.
"""

from __future__ import annotations

import operator
from typing import Callable, List

from repro.errors import ExecutionFault
from repro.machine.context import Context, ContextState
from repro.machine.machine import (
    _ALU_RR_FNS,
    _ALU_RRI_FNS,
    _ALU_RRR_FNS,
    _DISPATCH,
    _h_ld,
    _h_ldx,
    _h_st,
    _h_stx,
)

Thunk = Callable[[Context], int]

_RUNNING = ContextState.RUNNING

#: branch conditions as C-level functions (same truth table as the
#: handler lambdas for every Number operand)
_BRANCH_OPS = {
    "beq": operator.eq,
    "bne": operator.ne,
    "blt": operator.lt,
    "ble": operator.le,
    "bgt": operator.gt,
    "bge": operator.ge,
}


def _t_li(i, nxt):
    a, b = i.a, i.b

    def thunk(ctx):
        ctx.regs[a] = b
        return nxt

    return thunk


def _t_mov(i, nxt):
    a, b = i.a, i.b

    def thunk(ctx):
        regs = ctx.regs
        regs[a] = regs[b]
        return nxt

    return thunk


def _t_alu_rrr(fn, i, nxt):
    a, b, c = i.a, i.b, i.c

    def thunk(ctx):
        regs = ctx.regs
        regs[a] = fn(regs[b], regs[c])
        return nxt

    return thunk


def _t_alu_rri(fn, i, nxt):
    a, b, c = i.a, i.b, i.c

    def thunk(ctx):
        regs = ctx.regs
        regs[a] = fn(regs[b], c)
        return nxt

    return thunk


def _t_alu_rr(fn, i, nxt):
    a, b = i.a, i.b

    def thunk(ctx):
        regs = ctx.regs
        regs[a] = fn(regs[b])
        return nxt

    return thunk


def _t_ld(machine, mem, words, limit, i, pc, nxt):
    a, b, c = i.a, i.b, i.c
    get = words.get

    def thunk(ctx):
        regs = ctx.regs
        address = regs[b] + c
        if address.__class__ is int and 0 <= address < limit:
            mem.load_count += 1
            regs[a] = get(address, 0)
        else:
            _h_ld(machine, ctx, i, pc)
        return nxt

    return thunk


def _t_ldx(machine, mem, words, limit, i, pc, nxt):
    a, b, c = i.a, i.b, i.c
    get = words.get

    def thunk(ctx):
        regs = ctx.regs
        address = regs[b] + regs[c]
        if address.__class__ is int and 0 <= address < limit:
            mem.load_count += 1
            regs[a] = get(address, 0)
        else:
            _h_ldx(machine, ctx, i, pc)
        return nxt

    return thunk


def _t_st(machine, mem, words, limit, i, pc, nxt):
    a, b, c = i.a, i.b, i.c

    def thunk(ctx):
        regs = ctx.regs
        address = regs[b] + c
        if address.__class__ is int and 0 <= address < limit:
            mem.store_count += 1
            words[address] = regs[a]
        else:
            _h_st(machine, ctx, i, pc)
        return nxt

    return thunk


def _t_stx(machine, mem, words, limit, i, pc, nxt):
    a, b, c = i.a, i.b, i.c

    def thunk(ctx):
        regs = ctx.regs
        address = regs[b] + regs[c]
        if address.__class__ is int and 0 <= address < limit:
            mem.store_count += 1
            words[address] = regs[a]
        else:
            _h_stx(machine, ctx, i, pc)
        return nxt

    return thunk


def _t_branch_rrl(fn, i, nxt):
    a, b, target = i.a, i.b, i.target

    def thunk(ctx):
        regs = ctx.regs
        return target if fn(regs[a], regs[b]) else nxt

    return thunk


def _t_beqz(i, nxt):
    a, target = i.a, i.target

    def thunk(ctx):
        return target if ctx.regs[a] == 0 else nxt

    return thunk


def _t_bnez(i, nxt):
    a, target = i.a, i.target

    def thunk(ctx):
        return target if ctx.regs[a] != 0 else nxt

    return thunk


def _t_jmp(i):
    target = i.target

    def thunk(ctx):
        return target

    return thunk


def _t_call(i, pc):
    target, return_pc = i.target, pc + 1

    def thunk(ctx):
        stack = ctx.call_stack
        stack.append(return_pc)
        if len(stack) > 10_000:
            raise ExecutionFault("call stack overflow (runaway recursion?)")
        return target

    return thunk


def _t_ret(pc):
    def thunk(ctx):
        stack = ctx.call_stack
        if not stack:
            raise ExecutionFault(f"ret with empty call stack at pc {pc}")
        return stack.pop()

    return thunk


def _t_out(out_append, i, nxt):
    a = i.a

    def thunk(ctx):
        out_append(ctx.regs[a])
        return nxt

    return thunk


def _t_nop(nxt):
    def thunk(ctx):
        return nxt

    return thunk


def _t_legacy(machine, handler, i, pc):
    """Run the original single-step handler; encode its PC outcome."""

    def thunk(ctx):
        handler(machine, ctx, i, pc)
        if ctx.state is _RUNNING:
            return -2 - ctx.pc
        return -1

    thunk._legacy = True
    return thunk


def build_thunks(machine) -> List[Thunk]:
    """Compile ``machine.program`` into one next-PC thunk per PC.

    The thunks bind the machine's memory (including its words dict), the
    output buffer, and instruction operands at compile time; ``Machine``
    keeps those objects identity-stable across ``restore()`` and drops the
    compiled table when rewiring (``attach_engine``).
    """
    mem = machine.memory
    words = mem._words
    limit = mem.limit
    out_append = machine.output.append
    alu3, alu2i, alu2 = _ALU_RRR_FNS, _ALU_RRI_FNS, _ALU_RR_FNS
    table: List[Thunk] = []
    for pc, i in enumerate(machine.program.instructions):
        op = i.op
        nxt = pc + 1
        if op == "li":
            thunk = _t_li(i, nxt)
        elif op == "mov":
            thunk = _t_mov(i, nxt)
        elif op in alu3:
            thunk = _t_alu_rrr(alu3[op], i, nxt)
        elif op in alu2i:
            thunk = _t_alu_rri(alu2i[op], i, nxt)
        elif op in alu2:
            thunk = _t_alu_rr(alu2[op], i, nxt)
        elif op == "ld":
            thunk = _t_ld(machine, mem, words, limit, i, pc, nxt)
        elif op == "ldx":
            thunk = _t_ldx(machine, mem, words, limit, i, pc, nxt)
        elif op == "st":
            thunk = _t_st(machine, mem, words, limit, i, pc, nxt)
        elif op == "stx":
            thunk = _t_stx(machine, mem, words, limit, i, pc, nxt)
        elif op in _BRANCH_OPS:
            thunk = _t_branch_rrl(_BRANCH_OPS[op], i, nxt)
        elif op == "beqz":
            thunk = _t_beqz(i, nxt)
        elif op == "bnez":
            thunk = _t_bnez(i, nxt)
        elif op == "jmp":
            thunk = _t_jmp(i)
        elif op == "call":
            thunk = _t_call(i, pc)
        elif op == "ret":
            thunk = _t_ret(pc)
        elif op == "out":
            thunk = _t_out(out_append, i, nxt)
        elif op == "nop":
            thunk = _t_nop(nxt)
        else:
            # tst/tstx/tcheck/treturn/halt and any future op: defer to the
            # single-step handler so engine and state semantics are shared
            thunk = _t_legacy(machine, _DISPATCH[op], i, pc)
        table.append(thunk)
    return table
