"""Program loader: places static data into machine memory.

The layout itself (symbol → address) is computed at
:meth:`Program.finalize` time so that ``la`` pseudo-instructions can be
patched; the loader's job is only to materialize the initial values into a
:class:`~repro.machine.memory.Memory`.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ProgramValidationError
from repro.isa.program import Program
from repro.machine.memory import Memory


def load_program(program: Program, memory: Memory) -> Dict[str, Tuple[int, int]]:
    """Write the program's data items into memory.

    Returns the symbol table ``{name: (address, size)}``.  The program must
    be finalized (layout computed).  Initial values are written with
    uncounted stores so loader traffic never pollutes profiles.
    """
    if not program.finalized:
        raise ProgramValidationError("cannot load a non-finalized program")
    for item in program.data_items:
        base, _ = program.layout[item.name]
        memory.write_block(base, item.values)
    return dict(program.layout)
