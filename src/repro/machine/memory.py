"""Word-addressed flat data memory.

DTIR uses a Harvard organization: instructions live in the program object
and are addressed by PC; data memory is a flat, word-addressed space where
each word holds one Python number.  Unwritten words read as integer ``0``
(the loader zero-fills nothing; sparse storage makes untouched regions
free), which matches the zero-initialized ``.bss`` convention the workload
kernels rely on.

Addresses must be non-negative integers below :attr:`Memory.limit`; any
other access raises :class:`~repro.errors.MemoryFault` (or
:class:`~repro.errors.AlignmentFault` for non-integer addresses, which in
this word-addressed model is the moral equivalent of a misaligned access).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple, Union

from repro.errors import AlignmentFault, MemoryFault

Number = Union[int, float]


class Memory:
    """Sparse word-addressed memory with load/store counters."""

    __slots__ = ("_words", "limit", "load_count", "store_count")

    #: default address-space size in words (1 Gi-words)
    DEFAULT_LIMIT = 1 << 30

    def __init__(self, limit: int = DEFAULT_LIMIT):
        self._words: Dict[int, Number] = {}
        self.limit = limit
        self.load_count = 0
        self.store_count = 0

    # -- single-word access ---------------------------------------------------

    def load(self, address: int) -> Number:
        """Read one word; untouched words read as 0."""
        if address.__class__ is not int:
            # bool cannot be subclassed, so one isinstance suffices here
            if not isinstance(address, int) or address.__class__ is bool:
                raise AlignmentFault(f"non-integer address {address!r}")
        if not 0 <= address < self.limit:
            raise MemoryFault(address, "load outside address space")
        self.load_count += 1
        return self._words.get(address, 0)

    def store(self, address: int, value: Number) -> None:
        """Write one word."""
        if address.__class__ is not int:
            if not isinstance(address, int) or address.__class__ is bool:
                raise AlignmentFault(f"non-integer address {address!r}")
        if not 0 <= address < self.limit:
            raise MemoryFault(address, "store outside address space")
        self.store_count += 1
        self._words[address] = value

    def peek(self, address: int) -> Number:
        """Read without counting (for engines, debuggers, and checkers)."""
        if not isinstance(address, int) or isinstance(address, bool):
            raise AlignmentFault(f"non-integer address {address!r}")
        if not 0 <= address < self.limit:
            raise MemoryFault(address, "peek outside address space")
        return self._words.get(address, 0)

    def poke(self, address: int, value: Number) -> None:
        """Write without counting (for loaders and test fixtures)."""
        if not isinstance(address, int) or isinstance(address, bool):
            raise AlignmentFault(f"non-integer address {address!r}")
        if not 0 <= address < self.limit:
            raise MemoryFault(address, "poke outside address space")
        self._words[address] = value

    # -- block access ------------------------------------------------------------

    def write_block(self, base: int, values: Iterable[Number]) -> None:
        """Write consecutive words starting at ``base`` (uncounted)."""
        address = base
        for value in values:
            self.poke(address, value)
            address += 1

    def read_block(self, base: int, count: int) -> List[Number]:
        """Read ``count`` consecutive words starting at ``base`` (uncounted)."""
        return [self.peek(base + i) for i in range(count)]

    def load_range(self, base: int, count: int) -> List[Number]:
        """Read ``count`` consecutive words starting at ``base``, *counted*.

        Batched counterpart of :meth:`load`: one bounds check covers the
        whole span and ``load_count`` advances by ``count`` in one update,
        so bulk readback (result verification after a fast-path run, the
        benchmark harness's final-memory checksum) does not pay the
        per-word guard.
        """
        if base.__class__ is not int:
            if not isinstance(base, int) or base.__class__ is bool:
                raise AlignmentFault(f"non-integer address {base!r}")
        if count < 0:
            raise MemoryFault(base, f"negative load_range count {count}")
        if not (0 <= base and base + count <= self.limit):
            raise MemoryFault(base, "load_range outside address space")
        self.load_count += count
        get = self._words.get
        return [get(address, 0) for address in range(base, base + count)]

    # -- whole-memory operations --------------------------------------------------

    def snapshot(self) -> Dict[int, Number]:
        """A copy of all written words (for property tests / checkpoints)."""
        return dict(self._words)

    def restore(self, snapshot: Dict[int, Number]) -> None:
        """Replace contents with a snapshot taken earlier.

        In place: the fast-path thunks close over the words dict, so the
        dict object's identity must survive a restore.
        """
        words = self._words
        words.clear()
        words.update(snapshot)

    def written_range(self) -> Tuple[int, int]:
        """(min, max) written addresses, or (0, 0) if nothing was written."""
        if not self._words:
            return (0, 0)
        return (min(self._words), max(self._words))

    def __len__(self) -> int:
        """Number of words ever written."""
        return len(self._words)

    def __repr__(self) -> str:
        return (
            f"Memory({len(self._words)} words written, "
            f"{self.load_count} loads, {self.store_count} stores)"
        )
