"""Functional execution substrate: memory, contexts, and the machine.

The machine executes finalized DTIR programs.  It is *functional only* —
every instruction takes effect immediately and completely; all timing
(cycles, cache latencies, SMT contention) lives in :mod:`repro.timing`,
which drives the machine one instruction at a time and charges cycles
around it.  The DTT extensions (``tst``, ``tcheck``, ``treturn``) are
delegated to an installed :class:`repro.core.engine.DttEngine`; without an
engine, triggering stores behave as plain stores and ``tcheck`` is a no-op,
which is exactly the paper's baseline machine.
"""

from repro.machine.memory import Memory
from repro.machine.context import Context, ContextRole, ContextState
from repro.machine.events import MachineObserver, TraceObserver
from repro.machine.debugger import Debugger, StopEvent, StopKind
from repro.machine.loader import load_program
from repro.machine.machine import Machine, run_to_completion

__all__ = [
    "Memory",
    "Context",
    "ContextRole",
    "ContextState",
    "MachineObserver",
    "TraceObserver",
    "Debugger",
    "StopEvent",
    "StopKind",
    "load_program",
    "Machine",
    "run_to_completion",
]
