"""Observer hooks for machine execution.

Profilers (:mod:`repro.profiling`) and statistics collectors watch
execution through :class:`MachineObserver`.  The machine invokes hooks only
when at least one observer is attached, so unobserved runs pay nothing.

Hook order per instruction: memory hooks (``on_load`` / ``on_store``) fire
from inside the instruction's execution, then ``on_instruction`` fires once
the instruction has fully executed.
"""

from __future__ import annotations

from typing import List, Union

Number = Union[int, float]


class MachineObserver:
    """Base observer; every hook is a no-op.  Subclass what you need."""

    def on_instruction(self, ctx, pc: int, instruction) -> None:
        """An instruction at ``pc`` finished executing on ``ctx``."""

    def on_load(self, ctx, pc: int, address: int, value: Number) -> None:
        """A load at ``pc`` read ``value`` from ``address``."""

    def on_store(
        self,
        ctx,
        pc: int,
        address: int,
        old_value: Number,
        new_value: Number,
        triggering: bool,
    ) -> None:
        """A store at ``pc`` overwrote ``old_value`` with ``new_value``.

        ``triggering`` is True for the DTT triggering-store opcodes
        (whether or not a trigger actually fired — value filtering is the
        engine's business, reported separately via engine stats).
        """

    def on_branch(self, ctx, pc: int, taken: bool, target: int) -> None:
        """A conditional branch at ``pc`` resolved."""

    def on_halt(self, ctx) -> None:
        """A main context executed ``halt``."""


class TraceObserver(MachineObserver):
    """Records a bounded textual trace — a debugging aid, not a profiler."""

    def __init__(self, max_entries: int = 10_000):
        self.max_entries = max_entries
        self.entries: List[str] = []
        self.truncated = False

    def on_instruction(self, ctx, pc: int, instruction) -> None:
        if len(self.entries) >= self.max_entries:
            self.truncated = True
            return
        self.entries.append(
            f"ctx{ctx.context_id} pc={pc:5d} {instruction.op:8s} "
            f"a={instruction.a} b={instruction.b} c={instruction.c}"
        )

    def text(self) -> str:
        """The recorded trace as one string."""
        suffix = "\n... (truncated)" if self.truncated else ""
        return "\n".join(self.entries) + suffix
