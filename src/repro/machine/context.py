"""Hardware contexts: one register file + PC + state per context.

A context is the paper's unit of thread execution: the main program runs on
context 0; support threads are dispatched by the DTT engine onto idle
contexts (spare SMT contexts of the same core, or contexts of an idle core
in the CMP configuration).  Contexts own their architected state — register
file, PC, call stack — so a support thread never perturbs the main
thread's registers.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional, Union

from repro.errors import ContextError
from repro.isa.registers import (
    NUM_REGISTERS,
    TRIGGER_ADDR_REG,
    TRIGGER_OLD_VALUE_REG,
    TRIGGER_VALUE_REG,
)

Number = Union[int, float]


class ContextState(str, Enum):
    """Lifecycle state of a hardware context."""

    IDLE = "idle"  # no thread assigned
    RUNNING = "running"  # executing instructions
    BLOCKED = "blocked"  # main thread stalled at a tcheck barrier
    HALTED = "halted"  # main thread executed halt


class ContextRole(str, Enum):
    """What kind of thread the context is currently executing."""

    MAIN = "main"
    SUPPORT = "support"


class Context:
    """One hardware context (register file, PC, call stack, state)."""

    __slots__ = (
        "context_id",
        "core_id",
        "regs",
        "pc",
        "call_stack",
        "state",
        "role",
        "thread_name",
        "waiting_on",
        "instruction_count",
        "busy_until",
    )

    def __init__(self, context_id: int, core_id: int = 0):
        self.context_id = context_id
        self.core_id = core_id
        self.regs: List[Number] = [0] * NUM_REGISTERS
        self.pc = 0
        self.call_stack: List[int] = []
        self.state = ContextState.IDLE
        self.role = ContextRole.SUPPORT
        #: name of the DTT support thread currently running (support role)
        self.thread_name: Optional[str] = None
        #: thread id a blocked main context is waiting on (tcheck barrier)
        self.waiting_on: Optional[int] = None
        self.instruction_count = 0
        #: timing-model bookkeeping: cycle until which this context is busy
        self.busy_until = 0

    # -- lifecycle --------------------------------------------------------------

    def start_main(self, entry_pc: int) -> None:
        """Begin executing the main program at ``entry_pc``."""
        if self.state not in (ContextState.IDLE, ContextState.HALTED):
            raise ContextError(
                f"context {self.context_id} cannot start main while {self.state.value}"
            )
        self.pc = entry_pc
        self.call_stack = []
        self.role = ContextRole.MAIN
        self.state = ContextState.RUNNING
        self.thread_name = None
        self.waiting_on = None

    def start_support(
        self,
        entry_pc: int,
        thread_name: str,
        trigger_addr: int,
        new_value: Number,
        old_value: Number,
    ) -> None:
        """Begin executing a support thread, loading the trigger arguments
        into the architected convention registers (r1, r2, r3)."""
        if self.state is not ContextState.IDLE:
            raise ContextError(
                f"context {self.context_id} cannot start a support thread "
                f"while {self.state.value}"
            )
        self.pc = entry_pc
        self.call_stack = []
        self.role = ContextRole.SUPPORT
        self.state = ContextState.RUNNING
        self.thread_name = thread_name
        self.waiting_on = None
        self.regs[TRIGGER_ADDR_REG] = trigger_addr
        self.regs[TRIGGER_VALUE_REG] = new_value
        self.regs[TRIGGER_OLD_VALUE_REG] = old_value

    def finish_support(self) -> None:
        """Return to IDLE after a support thread's treturn (or a cancel)."""
        if self.role is not ContextRole.SUPPORT:
            raise ContextError(
                f"context {self.context_id} is not running a support thread"
            )
        self.state = ContextState.IDLE
        self.thread_name = None

    def block_on(self, thread_id: int) -> None:
        """Stall a main context at a tcheck barrier."""
        if self.role is not ContextRole.MAIN:
            raise ContextError("only a main context can block at tcheck")
        self.state = ContextState.BLOCKED
        self.waiting_on = thread_id

    def unblock(self) -> None:
        """Resume a context blocked at a tcheck barrier."""
        if self.state is not ContextState.BLOCKED:
            raise ContextError(f"context {self.context_id} is not blocked")
        self.state = ContextState.RUNNING
        self.waiting_on = None

    # -- queries -------------------------------------------------------------------

    @property
    def runnable(self) -> bool:
        """True if the context can execute an instruction right now."""
        return self.state is ContextState.RUNNING

    def __repr__(self) -> str:
        detail = f", thread={self.thread_name!r}" if self.thread_name else ""
        return (
            f"Context(id={self.context_id}, core={self.core_id}, "
            f"pc={self.pc}, {self.state.value}, {self.role.value}{detail})"
        )
