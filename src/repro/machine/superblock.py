"""Superblock compiler: exec-compiled straight-line runs for ``Machine.run``.

This is the third (topmost) execution tier.  Where the closure fast path
(:mod:`repro.machine.fastpath`) pays one Python call per instruction, this
tier partitions the program into single-entry multi-exit *superblocks*
and lowers each into one Python function built with ``compile``/``exec``.
Inside a block, registers live in Python locals, ALU ops are inline
expressions, and memory accesses go straight at the machine's words dict
behind the same in-range-exact-``int`` guard the closure thunks use —
with load/store counters batched per block instead of per access.

Block formation
---------------
A superblock starts at every *leader* — the program entry, every resolved
control-flow target, every label, every support-thread entry, and the
instruction after any boundary opcode — and extends as far as codegen can
take it (blocks from different leaders may overlap; the compiled function
is only ever entered at its own top).  Extension stops at a ``jmp``
(compiled as the block's final edge), at a *boundary* opcode that must
stay on the thunk path — ``call``/``ret`` (call-stack effects), the
engine opcodes ``tst``/``tstx``/``tcheck``/``treturn``, and ``halt``
(context state) — or at :data:`MAX_BLOCK_LENGTH`.

Conditional branches do **not** end a block:

* a branch whose target lies *forward inside* the block is if-converted —
  the skipped range becomes a nested ``else`` suite and a ``_skip``
  accumulator keeps the retired-instruction count exact;
* a branch (or the final ``jmp``) targeting the block's own *entry* makes
  a *loop block*: iterations run inside the function, bounded by the
  chunk budget the driver passes in, so tight kernels never leave
  compiled code;
* any other taken branch is a normal *block exit*: registers are written
  back, counters reconciled, and the target PC returned.

Side exits and faults
---------------------
The contract with :meth:`Machine._run_superblock` (mirroring the thunk
contract):

* return ``>= 0`` — the block retired ``cell[0]`` instructions and the
  return value is the next PC;
* return ``<= -2`` — a *side exit* encoding ``-2 - pc``: ``cell[0]``
  instructions retired, then the guard at ``pc`` failed (out-of-range or
  non-``int`` address, or no budget headroom); the driver dispatches the
  closure thunk at ``pc``, which reruns the full handler with exact
  fault/engine semantics;
* an exception with ``cell[1]`` set — a fault inside the block.  The
  except path has already written registers back, reconciled the batched
  memory counters, stored the retired count (including the faulting
  instruction, as in ``step()``) in ``cell[0]``, and left ``ctx.pc`` at
  the faulting instruction.

Every instruction that can raise (any ``int()``/``float()`` coercion,
division, ``fsqrt``, and even plain ``+``/``-``/``*`` — a huge ``int``
meeting a ``float`` overflows) is preceded by a ``_k = <position>``
marker so the except path knows exactly how far the block got.

Code cache
----------
Compiled code objects depend only on the *program*, not the machine:
machine state (memory, output buffer, counter cells) is bound via the
globals dict at ``exec`` time.  A process-wide weak-keyed cache therefore
shares one compile across every machine running the same program;
:func:`cache_stats` / :func:`publish_metrics` expose build time and
hit rates to the obs metrics registry.
"""

from __future__ import annotations

import math
import time
import weakref
from typing import Dict, List, Optional, Tuple

from repro.isa.program import Program

#: conditional branches (compiled as block exits, internal diamonds, or
#: loop back-edges) and ``jmp`` (a block's final edge)
TERMINATOR_OPCODES = frozenset(
    ["beq", "bne", "blt", "ble", "bgt", "bge", "beqz", "bnez", "jmp"]
)

#: ops that never enter a block: they stay on the closure-thunk path
#: because they touch the call stack, the DTT engine, or context state
BOUNDARY_OPCODES = frozenset(
    ["call", "ret", "tst", "tstx", "tcheck", "treturn", "halt"]
)

#: synthetic filename of the compiled module; profiler frames from this
#: tier show as (SB_FILENAME, line, "sb_<entry_pc>")
SB_FILENAME = "<superblock>"

#: function-name prefix of compiled blocks (flame folding keys off it)
SB_PREFIX = "sb_"

#: straight-line blocks shorter than this stay on the thunk path (the
#: per-call spill/fill overhead would eat the win); loop blocks amortize
#: that overhead over iterations, so any 2-instruction loop qualifies
MIN_BLOCK_LENGTH = 3
MIN_LOOP_LENGTH = 2

#: codegen stops extending a block past this many instructions
MAX_BLOCK_LENGTH = 256

_CMP = {
    "beq": "==", "bne": "!=", "blt": "<", "ble": "<=",
    "bgt": ">", "bge": ">=",
}

#: ops with inline int-coercion codegen:  int(b) <op> int(c)
_INT_BIN = {"and_": "&", "or_": "|", "xor": "^", "shl": "<<", "shr": ">>"}
_INT_BIN_IMM = {"andi": "&", "ori": "|", "xori": "^",
                "shli": "<<", "shri": ">>"}

#: ops with inline float-coercion codegen:  float(b) <op> float(c)
_FLOAT_BIN = {"fadd": "+", "fsub": "-", "fmul": "*"}

#: plain arithmetic (still fault-capable: huge int + float overflows)
_NUM_BIN = {"add": "+", "sub": "-", "mul": "*"}
_NUM_BIN_IMM = {"addi": "+", "subi": "-", "muli": "*"}

#: comparison-producing ops (provably fault-free on numbers)
_SETCC = {"slt": "<", "sle": "<=", "sgt": ">", "sge": ">=",
          "seq": "==", "sne": "!="}
_SETCC_IMM = {"slti": "<", "sgti": ">", "seqi": "=="}

#: everything the code generator can lower (anything else bounds a block)
COMPILABLE_OPCODES = frozenset(
    ["li", "mov", "nop", "out", "ld", "ldx", "st", "stx",
     "idiv", "imod", "fdiv", "fsqrt", "fabs", "fneg", "itof", "ftoi"]
) | TERMINATOR_OPCODES | set(_INT_BIN) | set(_INT_BIN_IMM) \
  | set(_FLOAT_BIN) | set(_NUM_BIN) | set(_NUM_BIN_IMM) \
  | set(_SETCC) | set(_SETCC_IMM)

#: compilable ops that can never raise on int/float operands; everything
#: else gets a ``_k`` position marker for the fault-reconciliation path
_SAFE_OPCODES = frozenset(
    ["li", "mov", "nop", "out"]
) | TERMINATOR_OPCODES | set(_SETCC) | set(_SETCC_IMM)

# -- process-wide code cache ---------------------------------------------------

_STATS = {
    "cache_hits": 0,
    "cache_misses": 0,
    "build_seconds": 0.0,
    "blocks_compiled": 0,
    "programs_compiled": 0,
}

_CODE_CACHE: "weakref.WeakKeyDictionary[Program, CompiledBlocks]" = (
    weakref.WeakKeyDictionary()
)


class CompiledBlocks:
    """One program's compiled superblocks: shared, machine-independent."""

    __slots__ = ("code", "blocks", "consts", "source", "__weakref__")

    def __init__(self, code, blocks: List[Tuple[int, int]],
                 consts: Dict[str, object], source: str):
        self.code = code
        #: (entry_pc, length) per compiled block
        self.blocks = blocks
        #: immediates that cannot be written as source literals
        self.consts = consts
        self.source = source

    def __repr__(self) -> str:
        return f"CompiledBlocks({len(self.blocks)} blocks)"


def cache_stats() -> Dict[str, float]:
    """Process-wide code-cache counters (hits, misses, build seconds)."""
    stats = dict(_STATS)
    total = stats["cache_hits"] + stats["cache_misses"]
    stats["hit_rate"] = stats["cache_hits"] / total if total else 0.0
    return stats


def reset_cache_stats() -> None:
    """Zero the cache counters (bench/test isolation; cache is kept)."""
    for key in _STATS:
        _STATS[key] = 0.0 if key == "build_seconds" else 0


def publish_metrics(registry) -> None:
    """Mirror the cache counters into a metrics registry as gauges.

    Gauges (not counters) because the stats are process-wide totals and
    publishing must be idempotent across registries and repeat calls.
    """
    stats = cache_stats()
    registry.gauge(
        "superblock.cache_hits",
        "superblock code-cache hits (compile skipped)").set(
            stats["cache_hits"])
    registry.gauge(
        "superblock.cache_misses",
        "superblock code-cache misses (programs compiled)").set(
            stats["cache_misses"])
    registry.gauge(
        "superblock.build_seconds",
        "cumulative superblock codegen+compile wall-clock").set(
            stats["build_seconds"])
    registry.gauge(
        "superblock.blocks_compiled",
        "superblocks compiled across all programs").set(
            stats["blocks_compiled"])
    registry.gauge(
        "superblock.programs_compiled",
        "distinct programs with compiled superblocks").set(
            stats["programs_compiled"])
    registry.gauge(
        "superblock.hit_rate",
        "code-cache hit fraction over all lookups").set(
            stats["hit_rate"])


# -- block formation -----------------------------------------------------------


def find_leaders(program: Program) -> set:
    """PCs where a superblock may begin."""
    size = len(program.instructions)
    leaders = {program.entry_pc}
    for pc in program.labels.values():
        if pc < size:
            leaders.add(pc)
    for name in program.threads:
        leaders.add(program.thread_entry_pc(name))
    for pc, ins in enumerate(program.instructions):
        if ins.target is not None and ins.target < size:
            leaders.add(ins.target)
        op = ins.op
        if (op in TERMINATOR_OPCODES or op in BOUNDARY_OPCODES
                or op not in COMPILABLE_OPCODES):
            if pc + 1 < size:
                leaders.add(pc + 1)
    return leaders


def form_blocks(program: Program) -> List[Tuple[int, int, bool]]:
    """Superblocks as ``(entry_pc, length, is_loop)``.

    One maximal block per leader; blocks may overlap (each is a compiled
    fast path for entry at its own top only).  Only blocks worth
    compiling are returned (``MIN_BLOCK_LENGTH``, or ``MIN_LOOP_LENGTH``
    when a back-edge targets the entry); every other PC runs on the
    closure-thunk path.
    """
    instructions = program.instructions
    size = len(instructions)
    blocks: List[Tuple[int, int, bool]] = []
    for leader in sorted(find_leaders(program)):
        if leader >= size:
            continue
        length = 0
        is_loop = False
        pc = leader
        while pc < size and length < MAX_BLOCK_LENGTH:
            ins = instructions[pc]
            op = ins.op
            if op not in COMPILABLE_OPCODES:
                break
            length += 1
            if op in TERMINATOR_OPCODES and ins.target == leader:
                is_loop = True
            if op == "jmp":
                # scan through forward jmps (codegen lowers them to an
                # unconditional skip, keeping diamonds like
                # ``beqz L1; ...; jmp L2; L1: ...; L2:`` inside one
                # block); a backward, self, or unresolved jmp ends it
                if ins.target is None or ins.target <= pc:
                    break
            pc += 1
        minimum = MIN_LOOP_LENGTH if is_loop else MIN_BLOCK_LENGTH
        if length >= minimum:
            blocks.append((leader, length, is_loop))
    return blocks


# -- code generation -----------------------------------------------------------


def _lit(value, consts: Dict[str, object]) -> str:
    """A source literal for an immediate, or a bound constant name.

    ``repr`` round-trips exactly for ``int`` and finite ``float``;
    anything else (``inf``/``nan``, numeric subclasses) is bound by
    reference so runtime semantics match the thunks bit for bit.
    """
    cls = value.__class__
    if cls is bool or cls is int:
        return repr(value)
    if cls is float and math.isfinite(value):
        return repr(value)
    name = f"_const{len(consts)}"
    consts[name] = value
    return name


def _reg_uses(ins) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """(read registers, written registers) of one compilable instruction."""
    op = ins.op
    if op == "li":
        return (), (ins.a,)
    if op == "mov":
        return (ins.b,), (ins.a,)
    if op in ("nop", "jmp"):
        return (), ()
    if op in ("out", "beqz", "bnez"):
        return (ins.a,), ()
    if op in _CMP:
        return (ins.a, ins.b), ()
    if op == "ld":
        return (ins.b,), (ins.a,)
    if op == "ldx":
        return (ins.b, ins.c), (ins.a,)
    if op == "st":
        return (ins.a, ins.b), ()
    if op == "stx":
        return (ins.a, ins.b, ins.c), ()
    if op in _NUM_BIN or op in _INT_BIN or op in _FLOAT_BIN \
            or op in _SETCC or op in ("idiv", "imod", "fdiv"):
        return (ins.b, ins.c), (ins.a,)
    # remaining two-operand forms: rri ALU and rr unary ALU
    return (ins.b,), (ins.a,)


def _branch_condition(ins) -> str:
    op = ins.op
    if op == "beqz":
        return f"r{ins.a} == 0"
    if op == "bnez":
        return f"r{ins.a} != 0"
    return f"r{ins.a} {_CMP[op]} r{ins.b}"


class _BlockGen:
    """Source generator for one superblock."""

    def __init__(self, program: Program, entry: int, length: int,
                 is_loop: bool, consts: Dict[str, object]):
        self.entry = entry
        self.length = length
        self.is_loop = is_loop
        self.consts = consts
        self.body = program.instructions[entry:entry + length]
        read: set = set()
        written: set = set()
        for ins in self.body:
            r, w = _reg_uses(ins)
            read.update(r)
            written.update(w)
        self.regs = sorted(read | written)
        self.written = sorted(written)
        #: loads/stores at positions < j, assuming the straight-line path
        self.loads_before = [0] * (length + 1)
        self.stores_before = [0] * (length + 1)
        for j, ins in enumerate(self.body):
            self.loads_before[j + 1] = (
                self.loads_before[j] + (ins.op in ("ld", "ldx")))
            self.stores_before[j + 1] = (
                self.stores_before[j] + (ins.op in ("st", "stx")))
        self.marked = any(ins.op not in _SAFE_OPCODES for ins in self.body)
        #: source-size budget for tail duplication (positions, not lines)
        self._dup_budget = 8 * length
        # which skip accumulators the block needs: scan every edge that
        # can skip a straight-line range (if-converted diamonds and
        # loop-continue back-edges)
        self.has_skip = False
        self.has_skip_loads = False
        self.has_skip_stores = False
        for j, ins in enumerate(self.body):
            if ins.op not in TERMINATOR_OPCODES:
                continue
            target = ins.target
            if target == entry:
                lo, hi = j + 1, length
            elif entry + j < target <= entry + length:
                lo, hi = j + 1, target - entry
            else:
                continue
            if hi > lo:
                self.has_skip = True
                if self.loads_before[hi] > self.loads_before[lo]:
                    self.has_skip_loads = True
                if self.stores_before[hi] > self.stores_before[lo]:
                    self.has_skip_stores = True

    # -- accounting expressions ---------------------------------------------

    def _retired(self, k) -> str:
        """Instructions retired once ``k`` positions of the current
        iteration are complete (``k``: int or a runtime expression)."""
        terms = []
        if self.is_loop:
            terms.append(f"_n * {self.length}")
        if isinstance(k, int):
            if k:
                terms.append(str(k))
        else:
            terms.append(k)
        expr = " + ".join(terms) if terms else "0"
        if self.has_skip:
            expr += " - _skip"
        return expr

    def _counter_line(self, counter: str, per_iter: int, upto,
                      skipped: bool) -> str:
        """``_mem.<counter> += ...`` for the cutoff ``upto``, or ''."""
        before = self.loads_before if counter == "load_count" \
            else self.stores_before
        terms = []
        if self.is_loop and per_iter:
            terms.append(f"_n * {per_iter}" if per_iter != 1 else "_n")
        if isinstance(upto, int):
            if before[upto]:
                terms.append(str(before[upto]))
        else:
            terms.append(upto)
        if not terms and not skipped:
            return ""
        expr = " + ".join(terms) if terms else "0"
        if skipped:
            accumulator = "_skl" if counter == "load_count" else "_sks"
            expr += f" - {accumulator}"
        return f"_mem.{counter} = _mem.{counter} + {expr}"

    def _exit_lines(self, k, next_expr: Optional[str]) -> List[str]:
        """Write back, reconcile counters, report, and leave the block.

        ``k`` — positions of the current iteration complete at the exit
        (int, or a runtime expression for the fault path); ``next_expr``
        — the return value (a PC, or the ``-2 - pc`` side-exit code), or
        ``None`` on the fault path where the exception propagates.
        """
        lines = [f"regs[{r}] = r{r}" for r in self.written]
        if isinstance(k, int):
            upto_loads = upto_stores = k
        else:
            # fault path: index the per-position prefix tuples by _k
            # (exclusive — a faulting instruction never reached memory)
            upto_loads = (f"_LB{self.entry}[_k]"
                          if self.loads_before[self.length] else 0)
            upto_stores = (f"_SB{self.entry}[_k]"
                           if self.stores_before[self.length] else 0)
        loads = self._counter_line(
            "load_count", self.loads_before[self.length],
            upto_loads, self.has_skip_loads)
        stores = self._counter_line(
            "store_count", self.stores_before[self.length],
            upto_stores, self.has_skip_stores)
        if loads:
            lines.append(loads)
        if stores:
            lines.append(stores)
        lines.append(f"_cell[0] = {self._retired(k)}")
        if next_expr is not None:
            lines.append(f"return {next_expr}")
        return lines

    def _skip_lines(self, lo: int, hi: int) -> List[str]:
        """Account for not executing straight-line positions [lo, hi)."""
        lines = []
        span = hi - lo
        if not span or not self.has_skip:
            return lines
        lines.append(f"_skip = _skip + {span}")
        loads = self.loads_before[hi] - self.loads_before[lo]
        stores = self.stores_before[hi] - self.stores_before[lo]
        if loads and self.has_skip_loads:
            lines.append(f"_skl = _skl + {loads}")
        if stores and self.has_skip_stores:
            lines.append(f"_sks = _sks + {stores}")
        return lines

    def _continue_lines(self) -> List[str]:
        """Take a back-edge to the entry (next iteration or block exit)."""
        lines = ["_n = _n + 1"]
        lines.append("if _n < _maxn:")
        lines.append("    continue")
        lines.extend(self._exit_lines(0, str(self.entry)))
        return lines

    # -- per-instruction emitters --------------------------------------------

    def _emit_plain(self, j: int, ins) -> List[str]:
        op = ins.op
        lines: List[str] = []
        if self.marked and op not in _SAFE_OPCODES:
            lines.append(f"_k = {j}")
        a, b, c = ins.a, ins.b, ins.c
        lit = lambda v: _lit(v, self.consts)  # noqa: E731
        if op == "li":
            lines.append(f"r{a} = {lit(b)}")
        elif op == "mov":
            lines.append(f"r{a} = r{b}")
        elif op in _NUM_BIN:
            lines.append(f"r{a} = r{b} {_NUM_BIN[op]} r{c}")
        elif op in _NUM_BIN_IMM:
            lines.append(f"r{a} = r{b} {_NUM_BIN_IMM[op]} {lit(c)}")
        elif op in _SETCC:
            lines.append(f"r{a} = 1 if r{b} {_SETCC[op]} r{c} else 0")
        elif op in _SETCC_IMM:
            lines.append(f"r{a} = 1 if r{b} {_SETCC_IMM[op]} {lit(c)} else 0")
        elif op in _INT_BIN:
            lines.append(f"r{a} = int(r{b}) {_INT_BIN[op]} int(r{c})")
        elif op in _INT_BIN_IMM:
            # fold the immediate's int() coercion at codegen time when
            # the result is exact (int/bool), matching the handler lambda
            if c.__class__ in (int, bool):
                imm = lit(int(c))
            else:
                imm = f"int({lit(c)})"
            lines.append(f"r{a} = int(r{b}) {_INT_BIN_IMM[op]} {imm}")
        elif op in _FLOAT_BIN:
            lines.append(f"r{a} = float(r{b}) {_FLOAT_BIN[op]} float(r{c})")
        elif op == "idiv":
            lines.append(f"r{a} = _idiv(int(r{b}), int(r{c}))")
        elif op == "imod":
            lines.append(f"r{a} = int(r{b}) - _idiv(int(r{b}), int(r{c}))"
                         f" * int(r{c})")
        elif op == "fdiv":
            lines.append(f"r{a} = _fdiv(r{b}, r{c})")
        elif op == "fsqrt":
            lines.append(f"r{a} = _fsqrt(r{b})")
        elif op == "fabs":
            lines.append(f"r{a} = abs(float(r{b}))")
        elif op == "fneg":
            lines.append(f"r{a} = -float(r{b})")
        elif op == "itof":
            lines.append(f"r{a} = float(r{b})")
        elif op == "ftoi":
            lines.append(f"r{a} = int(r{b})")
        elif op == "out":
            lines.append(f"_out(r{a})")
        elif op == "nop":
            pass
        elif op in ("ld", "ldx", "st", "stx"):
            address = (f"r{b} + {lit(c)}" if op in ("ld", "st")
                       else f"r{b} + r{c}")
            lines.append(f"_a = {address}")
            lines.append("if _a.__class__ is int and 0 <= _a < _limit:")
            if op in ("ld", "ldx"):
                lines.append(f"    r{a} = _get(_a, 0)")
            else:
                lines.append(f"    _words[_a] = r{a}")
            lines.append("else:")
            lines.extend(
                "    " + line
                for line in self._exit_lines(j, str(-2 - (self.entry + j))))
        else:  # pragma: no cover - formation admits only the ops above
            raise AssertionError(f"unexpected opcode in superblock: {op}")
        return lines

    def _emit_range(self, out: List[str], indent: str,
                    lo: int, hi: int) -> None:
        """Emit positions [lo, hi); ends with an exit unless it merges
        back into the enclosing range."""
        entry, length = self.entry, self.length
        j = lo
        while j < hi:
            ins = self.body[j]
            op = ins.op
            if op == "jmp":
                target = ins.target
                if target == entry and self.is_loop:
                    for line in self._continue_lines():
                        out.append(indent + line)
                    return
                if entry + j < target <= entry + hi:
                    # forward jmp inside this range: an unconditional
                    # skip straight to its target
                    for line in self._skip_lines(j + 1, target - entry):
                        out.append(indent + line)
                    j = target - entry
                    continue
                if entry + hi < target <= entry + length \
                        and self._dup_budget >= length - (target - entry):
                    # forward jmp past this range's merge point but
                    # still inside the block: duplicate the tail so
                    # this path reaches the block's back-edge/exit
                    # without leaving compiled code
                    self._dup_budget -= length - (target - entry)
                    for line in self._skip_lines(j + 1, target - entry):
                        out.append(indent + line)
                    self._emit_range(out, indent, target - entry, length)
                    return
                # backward or out-of-reach: leave the block (anything
                # after this position is unreachable along this path)
                for line in self._exit_lines(j + 1, str(target)):
                    out.append(indent + line)
                return
            if op in TERMINATOR_OPCODES:
                cond = _branch_condition(ins)
                target = ins.target
                if target == entry and self.is_loop:
                    out.append(indent + f"if {cond}:")
                    for line in self._skip_lines(j + 1, length):
                        out.append(indent + "    " + line)
                    for line in self._continue_lines():
                        out.append(indent + "    " + line)
                elif entry + j < target <= entry + hi:
                    # forward branch inside this range: if-convert it.
                    # A branch to the very next instruction is a no-op
                    # (taken or not, execution continues at j + 1).
                    merge = target - entry
                    if merge > j + 1:
                        skip = self._skip_lines(j + 1, merge)
                        out.append(indent + f"if {cond}:")
                        for line in skip:
                            out.append(indent + "    " + line)
                        if not skip:
                            out.append(indent + "    pass")
                        out.append(indent + "else:")
                        self._emit_range(out, indent + "    ", j + 1, merge)
                    j = merge
                    continue
                elif entry + hi < target <= entry + length \
                        and self._dup_budget >= length - (target - entry):
                    # taken edge lands past this range's merge point but
                    # inside the block: duplicate the tail on that edge
                    self._dup_budget -= length - (target - entry)
                    out.append(indent + f"if {cond}:")
                    for line in self._skip_lines(j + 1, target - entry):
                        out.append(indent + "    " + line)
                    self._emit_range(out, indent + "    ",
                                     target - entry, length)
                else:
                    out.append(indent + f"if {cond}:")
                    for line in self._exit_lines(j + 1, str(target)):
                        out.append(indent + "    " + line)
                j += 1
                continue
            for line in self._emit_plain(j, ins):
                out.append(indent + line)
            j += 1
        if hi == length:
            # fell off the block's end: continue at the next instruction
            for line in self._exit_lines(length, str(entry + length)):
                out.append(indent + line)

    # -- whole-function assembly ----------------------------------------------

    def generate(self) -> List[str]:
        entry, length = self.entry, self.length
        out = [f"def {SB_PREFIX}{entry}(ctx):"]
        out.append("    _b = _bc[0]")
        out.append(f"    if _b < {length}:")
        out.append("        _cell[0] = 0")
        out.append(f"        return {-2 - entry}")
        out.append("    regs = ctx.regs")
        for r in self.regs:
            out.append(f"    r{r} = regs[{r}]")
        if self.is_loop:
            out.append(f"    _maxn = _b // {length}")
            out.append("    _n = 0")
        if self.has_skip:
            out.append("    _skip = 0")
        if self.has_skip_loads:
            out.append("    _skl = 0")
        if self.has_skip_stores:
            out.append("    _sks = 0")
        if self.marked:
            out.append("    _k = 0")
            out.append("    try:")
        indent = "    " + ("    " if self.marked else "")
        if self.is_loop:
            out.append(indent + "while 1:")
            self._emit_range(out, indent + "    ", 0, length)
        else:
            self._emit_range(out, indent, 0, length)
        if self.marked:
            out.append("    except BaseException:")
            for line in self._exit_lines("_k + 1", None):
                out.append("        " + line)
            out.append("        _cell[1] = 1")
            out.append(f"        ctx.pc = {entry} + _k")
            out.append("        raise")
        return out

    def prelude(self) -> List[str]:
        """Module-level constant tuples for the fault-reconciliation path.

        ``_LB<entry>[k]`` / ``_SB<entry>[k]`` — straight-line loads and
        stores at positions *strictly before* ``k``: a fault at position
        ``k`` raised before the instruction's own memory access counted.
        """
        if not self.marked:
            return []
        lines = []
        if self.loads_before[self.length]:
            lines.append(
                f"_LB{self.entry} = "
                f"{tuple(self.loads_before[:self.length])}")
        if self.stores_before[self.length]:
            lines.append(
                f"_SB{self.entry} = "
                f"{tuple(self.stores_before[:self.length])}")
        return lines


def generate_source(
    program: Program, blocks: List[Tuple[int, int, bool]]
) -> Tuple[str, Dict[str, object]]:
    """Source text + non-literal constant bindings for a program's blocks."""
    consts: Dict[str, object] = {}
    lines: List[str] = []
    for entry, length, is_loop in blocks:
        gen = _BlockGen(program, entry, length, is_loop, consts)
        lines.extend(gen.prelude())
        lines.extend(gen.generate())
        lines.append("")
    return "\n".join(lines), consts


# -- compilation and per-machine installation ---------------------------------


def compile_blocks(program: Program) -> CompiledBlocks:
    """Compile (or fetch from the process-wide cache) a program's blocks."""
    cached = _CODE_CACHE.get(program)
    if cached is not None:
        _STATS["cache_hits"] += 1
        return cached
    _STATS["cache_misses"] += 1
    started = time.perf_counter()
    blocks = form_blocks(program)
    source, consts = generate_source(program, blocks)
    code = compile(source, SB_FILENAME, "exec")
    compiled = CompiledBlocks(
        code, [(entry, length) for entry, length, _ in blocks],
        consts, source)
    _STATS["build_seconds"] += time.perf_counter() - started
    _STATS["blocks_compiled"] += len(blocks)
    _STATS["programs_compiled"] += 1
    _CODE_CACHE[program] = compiled
    return compiled


def install(machine):
    """Bind a machine to its program's compiled blocks.

    Returns ``(table, cell, budget_cell)``: a per-PC table holding the
    block function at each block entry (``None`` elsewhere), the
    ``[retired, fault_flag]`` cell every block reports through, and the
    one-element chunk-budget cell the driver refreshes before each call.

    The code objects are shared via the cache; this only ``exec``s them
    against this machine's memory, output buffer, and cells — all bound
    by identity, which ``Machine.restore`` preserves.
    """
    from repro.machine.machine import _fdiv, _fsqrt, _trunc_div

    compiled = compile_blocks(machine.program)
    cell = [0, 0]
    budget_cell = [0]
    memory = machine.memory
    namespace = dict(compiled.consts)
    namespace.update(
        _mem=memory,
        _words=memory._words,
        _get=memory._words.get,
        _limit=memory.limit,
        _out=machine.output.append,
        _cell=cell,
        _bc=budget_cell,
        _idiv=_trunc_div,
        _fdiv=_fdiv,
        _fsqrt=_fsqrt,
    )
    exec(compiled.code, namespace)
    table = [None] * len(machine.program.instructions)
    for entry, _length in compiled.blocks:
        table[entry] = namespace[f"{SB_PREFIX}{entry}"]
    return table, cell, budget_cell
