"""Architected register file of the DTIR ISA.

DTIR has a single untyped register file of :data:`NUM_REGISTERS` general
registers, ``r0`` .. ``r31``.  Registers hold Python numbers (``int`` or
``float``); the distinction between integer and floating-point *pipelines*
lives in the opcode class (see :mod:`repro.isa.instructions`), not in the
register file.  This mirrors how the paper's evaluation treats registers:
the interesting state for data-triggered threads is memory, not registers.

Three registers have a calling convention assigned by the DTT engine when
it dispatches a support thread (see :mod:`repro.core.engine`):

* ``r1`` — the address written by the triggering store
* ``r2`` — the new value written by the triggering store
* ``r3`` — the old value that was overwritten

They are ordinary registers in every other respect.
"""

from __future__ import annotations

from repro.errors import InvalidRegisterError

#: Number of architected general registers.
NUM_REGISTERS = 32

#: Register receiving the triggering address on support-thread dispatch.
TRIGGER_ADDR_REG = 1
#: Register receiving the newly stored value on support-thread dispatch.
TRIGGER_VALUE_REG = 2
#: Register receiving the overwritten (old) value on support-thread dispatch.
TRIGGER_OLD_VALUE_REG = 3


class Reg(int):
    """A register operand: an ``int`` subclass carrying its display name.

    Instructions store operands as plain integers for interpreter speed;
    ``Reg`` exists so builder code and reprs stay readable.  ``Reg(5)``
    compares and hashes exactly like ``5``.
    """

    __slots__ = ()

    def __new__(cls, index: int) -> "Reg":
        if not 0 <= int(index) < NUM_REGISTERS:
            raise InvalidRegisterError(
                f"register index {index} outside r0..r{NUM_REGISTERS - 1}"
            )
        return super().__new__(cls, int(index))

    def __repr__(self) -> str:
        return f"r{int(self)}"

    __str__ = __repr__


def register_name(index: int) -> str:
    """Return the canonical name (``rN``) for a register index."""
    if not 0 <= index < NUM_REGISTERS:
        raise InvalidRegisterError(
            f"register index {index} outside r0..r{NUM_REGISTERS - 1}"
        )
    return f"r{index}"


def register_index(name: str) -> int:
    """Parse a register name (``rN``) into its index.

    Raises :class:`~repro.errors.InvalidRegisterError` for anything that is
    not a well-formed, in-range register name.
    """
    if not name or name[0] != "r" or not name[1:].isdigit():
        raise InvalidRegisterError(f"malformed register name {name!r}")
    index = int(name[1:])
    if not 0 <= index < NUM_REGISTERS:
        raise InvalidRegisterError(
            f"register index {index} outside r0..r{NUM_REGISTERS - 1}"
        )
    return index
