"""DTIR — the small RISC-like ISA executed by the repro simulator.

The ISA models the paper's baseline instruction set plus the data-triggered
thread extensions (Tseng & Tullsen, HPCA 2011):

* ``tst``/``tstx`` — *triggering stores*: stores that, when they change the
  value at the watched address, enqueue an attached support thread.
* ``treturn`` — terminates a support thread.
* ``tcheck`` — the main thread's consume point: a barrier that waits until
  the named support thread has no pending or in-flight executions.

Public surface:

* :class:`~repro.isa.instructions.Instruction` and the ``OPCODES`` table
* :class:`~repro.isa.program.Program` / :class:`~repro.isa.program.Function`
* :class:`~repro.isa.builder.ProgramBuilder` — structured authoring DSL
* :func:`~repro.isa.assembler.format_program` /
  :func:`~repro.isa.assembler.parse_program` — two-way text assembler
"""

from repro.isa.registers import NUM_REGISTERS, Reg, register_index, register_name
from repro.isa.instructions import (
    Instruction,
    OPCODES,
    OpClass,
    OpInfo,
    is_branch,
    is_load,
    is_store,
    is_triggering_store,
)
from repro.isa.program import Function, Program
from repro.isa.builder import ProgramBuilder
from repro.isa.assembler import format_program, parse_program
from repro.isa.lint import Finding, errors_only, lint_program

__all__ = [
    "NUM_REGISTERS",
    "Reg",
    "register_index",
    "register_name",
    "Instruction",
    "OPCODES",
    "OpClass",
    "OpInfo",
    "is_branch",
    "is_load",
    "is_store",
    "is_triggering_store",
    "Function",
    "Program",
    "ProgramBuilder",
    "format_program",
    "parse_program",
    "Finding",
    "errors_only",
    "lint_program",
]
