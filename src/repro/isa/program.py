"""Programs: instruction sequences, labels, functions, and data items.

A :class:`Program` is the unit the machine loads and executes: a flat list
of :class:`~repro.isa.instructions.Instruction` with a label table, optional
function metadata, a static-data manifest (named arrays placed in memory by
the loader), and declarations of DTT support threads (name → entry label).

Programs are built either by the :class:`~repro.isa.builder.ProgramBuilder`
DSL or by the text assembler, then :meth:`finalized <Program.finalize>`,
which resolves every control-flow label to an absolute PC and runs
whole-program validation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ProgramValidationError
from repro.isa.instructions import Instruction, OpClass

Number = Union[int, float]


class Function:
    """Metadata for one function: a named half-open PC range."""

    __slots__ = ("name", "start", "end")

    def __init__(self, name: str, start: int, end: int):
        self.name = name
        self.start = start
        self.end = end

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end

    def __repr__(self) -> str:
        return f"Function({self.name!r}, pc={self.start}..{self.end})"


class DataItem:
    """A named static array placed in memory by the loader."""

    __slots__ = ("name", "values")

    def __init__(self, name: str, values: Sequence[Number]):
        self.name = name
        self.values = list(values)

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"DataItem({self.name!r}, len={len(self.values)})"


class Program:
    """A finalized-or-not DTIR program."""

    def __init__(self) -> None:
        self.instructions: List[Instruction] = []
        self.labels: Dict[str, int] = {}
        self.functions: List[Function] = []
        #: static data manifest, in placement order
        self.data_items: List[DataItem] = []
        #: DTT support threads: thread name -> entry label
        self.threads: Dict[str, str] = {}
        self.entry_label: str = "main"
        #: pending symbol fixups: (pc, operand_slot, symbol, word_offset)
        self.symbol_patches: List[Tuple[int, str, str, int]] = []
        #: symbol table computed at finalize: name -> (address, size)
        self.layout: Dict[str, Tuple[int, int]] = {}
        self._finalized = False

    #: word address where the loader places the first data item
    DATA_BASE = 64
    #: alignment (in words) of each data item; one cache line by default
    DATA_ALIGN = 16

    # -- construction ---------------------------------------------------------

    def append(self, instruction: Instruction) -> int:
        """Append an instruction; returns its PC."""
        self._require_mutable()
        self.instructions.append(instruction)
        return len(self.instructions) - 1

    def add_label(self, name: str, pc: Optional[int] = None) -> None:
        """Bind ``name`` to ``pc`` (default: the next instruction slot)."""
        self._require_mutable()
        if name in self.labels:
            raise ProgramValidationError(f"duplicate label {name!r}")
        self.labels[name] = len(self.instructions) if pc is None else pc

    def add_function(self, name: str, start: int, end: int) -> None:
        """Record a named half-open PC range as a function."""
        self._require_mutable()
        self.functions.append(Function(name, start, end))

    def add_data(self, name: str, values: Sequence[Number]) -> DataItem:
        """Declare a named static array for the loader to place."""
        self._require_mutable()
        if any(item.name == name for item in self.data_items):
            raise ProgramValidationError(f"duplicate data item {name!r}")
        item = DataItem(name, values)
        self.data_items.append(item)
        return item

    def add_symbol_patch(self, pc: int, slot: str, symbol: str, offset: int = 0) -> None:
        """Record that operand ``slot`` ('a'/'b'/'c') of the instruction at
        ``pc`` must be replaced at finalize time by the address of
        ``symbol`` plus ``offset`` words."""
        self._require_mutable()
        if slot not in ("a", "b", "c"):
            raise ProgramValidationError(f"bad operand slot {slot!r}")
        self.symbol_patches.append((pc, slot, symbol, offset))

    def declare_thread(self, name: str, entry_label: str) -> None:
        """Declare a DTT support thread with the given entry label."""
        self._require_mutable()
        if name in self.threads:
            raise ProgramValidationError(f"duplicate thread {name!r}")
        self.threads[name] = entry_label

    def _require_mutable(self) -> None:
        if self._finalized:
            raise ProgramValidationError("program is finalized and immutable")

    # -- finalization -----------------------------------------------------------

    @property
    def finalized(self) -> bool:
        return self._finalized

    def finalize(self) -> "Program":
        """Resolve labels, validate the whole program, and freeze it.

        Returns ``self`` for chaining.  Idempotent.
        """
        if self._finalized:
            return self
        if not self.instructions:
            raise ProgramValidationError("empty program")
        if self.entry_label not in self.labels:
            raise ProgramValidationError(
                f"entry label {self.entry_label!r} is not defined"
            )
        size = len(self.instructions)
        for name, pc in self.labels.items():
            if not 0 <= pc <= size:
                raise ProgramValidationError(f"label {name!r} points outside program")
        for pc, instruction in enumerate(self.instructions):
            if instruction.label is not None:
                target = self.labels.get(instruction.label)
                if target is None:
                    raise ProgramValidationError(
                        f"pc {pc}: undefined label {instruction.label!r}"
                    )
                if target >= size:
                    raise ProgramValidationError(
                        f"pc {pc}: label {instruction.label!r} points past the end"
                    )
                instruction.target = target
        for thread_name, entry in self.threads.items():
            if entry not in self.labels:
                raise ProgramValidationError(
                    f"thread {thread_name!r}: undefined entry label {entry!r}"
                )
        self._check_thread_termination()
        self.layout = data_layout(self.data_items, base=self.DATA_BASE,
                                  align=self.DATA_ALIGN)
        for pc, slot, symbol, offset in self.symbol_patches:
            if symbol not in self.layout:
                raise ProgramValidationError(
                    f"pc {pc}: undefined data symbol {symbol!r}"
                )
            if not 0 <= pc < size:
                raise ProgramValidationError(
                    f"symbol patch references pc {pc} outside program"
                )
            setattr(self.instructions[pc], slot, self.layout[symbol][0] + offset)
        self._finalized = True
        return self

    def _check_thread_termination(self) -> None:
        """Best-effort check that support-thread bodies contain a treturn.

        A support thread that never executes ``treturn`` would occupy its
        hardware context forever, so catching the common authoring mistake
        (forgetting the terminator) at finalize time is worth a weak
        heuristic: we require *some* ``treturn`` to exist in the program
        whenever threads are declared.
        """
        if not self.threads:
            return
        if not any(i.op == "treturn" for i in self.instructions):
            raise ProgramValidationError(
                "program declares support threads but contains no treturn"
            )

    # -- queries -------------------------------------------------------------------

    @property
    def entry_pc(self) -> int:
        """PC of the entry label (requires a defined entry label)."""
        return self.labels[self.entry_label]

    def thread_entry_pc(self, name: str) -> int:
        """Entry PC of a declared support thread."""
        if name not in self.threads:
            raise ProgramValidationError(f"unknown thread {name!r}")
        return self.labels[self.threads[name]]

    def address_of(self, name: str, offset: int = 0) -> int:
        """Word address of a data symbol (requires a finalized program)."""
        if not self._finalized:
            raise ProgramValidationError("layout is only available after finalize()")
        if name not in self.layout:
            raise ProgramValidationError(f"unknown data symbol {name!r}")
        return self.layout[name][0] + offset

    def size_of(self, name: str) -> int:
        """Size in words of a data symbol (requires a finalized program)."""
        if not self._finalized:
            raise ProgramValidationError("layout is only available after finalize()")
        if name not in self.layout:
            raise ProgramValidationError(f"unknown data symbol {name!r}")
        return self.layout[name][1]

    def labels_at(self, pc: int) -> List[str]:
        """All label names bound to ``pc`` (sorted for determinism)."""
        return sorted(name for name, at in self.labels.items() if at == pc)

    def function_at(self, pc: int) -> Optional[Function]:
        """The function containing ``pc``, if any."""
        for function in self.functions:
            if pc in function:
                return function
        return None

    def static_counts_by_class(self) -> Dict[OpClass, int]:
        """Static instruction counts per opcode class."""
        counts: Dict[OpClass, int] = {}
        for instruction in self.instructions:
            op_class = instruction.op_class
            counts[op_class] = counts.get(op_class, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterable[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:
        state = "finalized" if self._finalized else "building"
        return (
            f"Program({len(self.instructions)} instructions, "
            f"{len(self.labels)} labels, {len(self.data_items)} data items, "
            f"{len(self.threads)} threads, {state})"
        )


def data_layout(
    items: Sequence[DataItem], base: int = 0, align: int = 16
) -> Dict[str, Tuple[int, int]]:
    """Assign word addresses to data items.

    Returns ``{name: (base_address, size_in_words)}``.  Each item is aligned
    to ``align`` words (one cache line by default) so that distinct arrays
    never share a cache line — which matters for the line-granularity
    false-trigger ablation (E8b), where sharing would conflate arrays.
    """
    layout: Dict[str, Tuple[int, int]] = {}
    address = base
    for item in items:
        if address % align:
            address += align - address % align
        layout[item.name] = (address, len(item.values))
        address += max(len(item.values), 1)
    return layout
