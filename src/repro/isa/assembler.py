"""Two-way text assembler for DTIR programs.

:func:`format_program` renders a program (finalized or not) as assembly
text; :func:`parse_program` parses that text back.  The pair round-trips:
``parse_program(format_program(p))`` reproduces ``p``'s instructions,
labels, functions, data items, threads, and entry point.

Syntax::

    ; comment (also: # comment)
    .entry main
    .data costs 1 2 3.5 4
    .thread refresh __thread_refresh
    .func main 0 12

    main:
        li r4, 0
        beq r4, r5, done
    done:
        halt

Directives may appear anywhere; labels end with ``:`` on their own line;
operands are comma-separated.  Symbol patches (``la`` pseudo-instructions)
are already expanded to ``li`` by the builder, so the text format has no
``la``; formatting a *non-finalized* program with pending symbol patches is
rejected to avoid silently printing placeholder immediates.
"""

from __future__ import annotations

from typing import List, Union

from repro.errors import AssemblerError
from repro.isa.instructions import Instruction, OPCODES
from repro.isa.program import Program
from repro.isa.registers import register_index, register_name


def _format_number(value: Union[int, float]) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _parse_number(token: str, line: int) -> Union[int, float]:
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        raise AssemblerError(f"expected a number, got {token!r}", line) from None


def format_instruction(instruction: Instruction) -> str:
    """Render one instruction as ``op a, b, c`` text."""
    info = OPCODES[instruction.op]
    operands: List[str] = []
    slots = iter(instruction.operands())
    for code in info.signature:
        if code == "L":
            operands.append(str(instruction.label))
        elif code == "R":
            operands.append(register_name(next(slots)))
        else:  # immediate
            operands.append(_format_number(next(slots)))
    if operands:
        return f"{instruction.op} {', '.join(operands)}"
    return instruction.op


def format_program(program: Program) -> str:
    """Render a whole program as assembly text."""
    if program.symbol_patches and not program.finalized:
        raise AssemblerError(
            "cannot format a non-finalized program with pending symbol patches"
        )
    lines: List[str] = [f".entry {program.entry_label}"]
    for item in program.data_items:
        values = " ".join(_format_number(v) for v in item.values)
        lines.append(f".data {item.name} {values}".rstrip())
    for name, entry in program.threads.items():
        lines.append(f".thread {name} {entry}")
    for function in program.functions:
        lines.append(f".func {function.name} {function.start} {function.end}")
    lines.append("")
    for pc, instruction in enumerate(program.instructions):
        for label in program.labels_at(pc):
            lines.append(f"{label}:")
        lines.append(f"    {format_instruction(instruction)}")
    # labels bound exactly at the end of the program
    for label in program.labels_at(len(program.instructions)):
        lines.append(f"{label}:")
    lines.append("")
    return "\n".join(lines)


def parse_instruction(text: str, line: int = 0) -> Instruction:
    """Parse one ``op a, b, c`` line into an instruction."""
    stripped = text.strip()
    if not stripped:
        raise AssemblerError("empty instruction", line)
    parts = stripped.split(None, 1)
    op = parts[0]
    info = OPCODES.get(op)
    if info is None:
        raise AssemblerError(f"unknown opcode {op!r}", line)
    tokens = [t.strip() for t in parts[1].split(",")] if len(parts) > 1 else []
    tokens = [t for t in tokens if t]
    expected = len(info.signature)
    if len(tokens) != expected:
        raise AssemblerError(
            f"{op}: expected {expected} operand(s), got {len(tokens)}", line
        )
    slots: List[Union[int, float, None]] = []
    label = None
    for code, token in zip(info.signature, tokens):
        if code == "L":
            label = token
        elif code == "R":
            try:
                slots.append(register_index(token))
            except Exception:
                raise AssemblerError(f"bad register {token!r}", line) from None
        else:
            slots.append(_parse_number(token, line))
    while len(slots) < 3:
        slots.append(None)
    return Instruction(op, slots[0], slots[1], slots[2], label=label)


def parse_program(text: str) -> Program:
    """Parse assembly text into a (non-finalized) program.

    Call :meth:`~repro.isa.program.Program.finalize` on the result before
    executing it.
    """
    program = Program()
    pending_functions: List[tuple] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            _parse_directive(program, pending_functions, line, line_number)
        elif line.endswith(":"):
            name = line[:-1].strip()
            if not name:
                raise AssemblerError("empty label name", line_number)
            program.add_label(name)
        else:
            program.append(parse_instruction(line, line_number))
    for name, start, end in pending_functions:
        program.add_function(name, start, end)
    return program


def _parse_directive(program, pending_functions, line: str, line_number: int) -> None:
    tokens = line.split()
    directive = tokens[0]
    if directive == ".entry":
        if len(tokens) != 2:
            raise AssemblerError(".entry takes one label", line_number)
        program.entry_label = tokens[1]
    elif directive == ".data":
        if len(tokens) < 2:
            raise AssemblerError(".data takes a name and values", line_number)
        values = [_parse_number(t, line_number) for t in tokens[2:]]
        program.add_data(tokens[1], values)
    elif directive == ".thread":
        if len(tokens) != 3:
            raise AssemblerError(".thread takes a name and an entry label",
                                 line_number)
        program.declare_thread(tokens[1], tokens[2])
    elif directive == ".func":
        if len(tokens) != 4:
            raise AssemblerError(".func takes name, start, end", line_number)
        try:
            start, end = int(tokens[2]), int(tokens[3])
        except ValueError:
            raise AssemblerError(".func bounds must be integers",
                                 line_number) from None
        pending_functions.append((tokens[1], start, end))
    else:
        raise AssemblerError(f"unknown directive {directive!r}", line_number)
