"""DTIR instructions and the opcode table.

An :class:`Instruction` is a tiny record: an opcode string plus up to three
operand slots ``a``, ``b``, ``c`` whose meaning is defined per opcode by the
:data:`OPCODES` table, plus an optional ``label`` (unresolved control-flow
target) and ``target`` (the PC the label resolves to, filled in by
:meth:`repro.isa.program.Program.finalize`).

Operand signature codes used in :data:`OPCODES`:

``R``  register operand (int index into the register file)
``I``  immediate (Python ``int`` or ``float``)
``L``  label / control-flow target (string until finalized)

The opcode *class* (:class:`OpClass`) drives the timing model's latency
table and the profiler's instruction categorization.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Tuple, Union

from repro.errors import InvalidInstructionError
from repro.isa.registers import NUM_REGISTERS

Operand = Union[int, float, str, None]


class OpClass(str, Enum):
    """Functional-unit class of an opcode, used by the timing model."""

    IALU = "ialu"  # integer add/logic/compare/move
    IMUL = "imul"  # integer multiply
    IDIV = "idiv"  # integer divide / modulo
    FPADD = "fpadd"  # fp add/sub/compare/convert
    FPMUL = "fpmul"  # fp multiply
    FPDIV = "fpdiv"  # fp divide / sqrt
    LOAD = "load"
    STORE = "store"
    TSTORE = "tstore"  # triggering store (DTT extension)
    BRANCH = "branch"  # conditional branches
    JUMP = "jump"  # jmp / call / ret / treturn
    SYS = "sys"  # tcheck, out, nop, halt


class OpInfo:
    """Static description of one opcode: operand signature and class."""

    __slots__ = ("name", "signature", "op_class", "description")

    def __init__(self, name: str, signature: str, op_class: OpClass, description: str):
        self.name = name
        self.signature = signature
        self.op_class = op_class
        self.description = description

    def __repr__(self) -> str:
        return f"OpInfo({self.name!r}, {self.signature!r}, {self.op_class.value})"


def _table(*rows: Tuple[str, str, OpClass, str]) -> "dict[str, OpInfo]":
    table = {}
    for name, signature, op_class, description in rows:
        if name in table:
            raise ValueError(f"duplicate opcode {name}")
        table[name] = OpInfo(name, signature, op_class, description)
    return table


#: The complete DTIR opcode table.
OPCODES = _table(
    # -- data movement ----------------------------------------------------
    ("li", "RI", OpClass.IALU, "a <- immediate b"),
    ("mov", "RR", OpClass.IALU, "a <- b"),
    # -- integer / generic ALU, register-register -------------------------
    ("add", "RRR", OpClass.IALU, "a <- b + c"),
    ("sub", "RRR", OpClass.IALU, "a <- b - c"),
    ("mul", "RRR", OpClass.IMUL, "a <- b * c"),
    ("idiv", "RRR", OpClass.IDIV, "a <- b // c (trunc toward zero)"),
    ("imod", "RRR", OpClass.IDIV, "a <- b mod c (sign of b)"),
    ("and_", "RRR", OpClass.IALU, "a <- b & c"),
    ("or_", "RRR", OpClass.IALU, "a <- b | c"),
    ("xor", "RRR", OpClass.IALU, "a <- b ^ c"),
    ("shl", "RRR", OpClass.IALU, "a <- b << c"),
    ("shr", "RRR", OpClass.IALU, "a <- b >> c"),
    ("slt", "RRR", OpClass.IALU, "a <- 1 if b < c else 0"),
    ("sle", "RRR", OpClass.IALU, "a <- 1 if b <= c else 0"),
    ("sgt", "RRR", OpClass.IALU, "a <- 1 if b > c else 0"),
    ("sge", "RRR", OpClass.IALU, "a <- 1 if b >= c else 0"),
    ("seq", "RRR", OpClass.IALU, "a <- 1 if b == c else 0"),
    ("sne", "RRR", OpClass.IALU, "a <- 1 if b != c else 0"),
    # -- integer ALU, register-immediate ----------------------------------
    ("addi", "RRI", OpClass.IALU, "a <- b + imm c"),
    ("subi", "RRI", OpClass.IALU, "a <- b - imm c"),
    ("muli", "RRI", OpClass.IMUL, "a <- b * imm c"),
    ("andi", "RRI", OpClass.IALU, "a <- b & imm c"),
    ("ori", "RRI", OpClass.IALU, "a <- b | imm c"),
    ("xori", "RRI", OpClass.IALU, "a <- b ^ imm c"),
    ("shli", "RRI", OpClass.IALU, "a <- b << imm c"),
    ("shri", "RRI", OpClass.IALU, "a <- b >> imm c"),
    ("slti", "RRI", OpClass.IALU, "a <- 1 if b < imm c else 0"),
    ("sgti", "RRI", OpClass.IALU, "a <- 1 if b > imm c else 0"),
    ("seqi", "RRI", OpClass.IALU, "a <- 1 if b == imm c else 0"),
    # -- floating point ----------------------------------------------------
    ("fadd", "RRR", OpClass.FPADD, "a <- float(b) + float(c)"),
    ("fsub", "RRR", OpClass.FPADD, "a <- float(b) - float(c)"),
    ("fmul", "RRR", OpClass.FPMUL, "a <- float(b) * float(c)"),
    ("fdiv", "RRR", OpClass.FPDIV, "a <- float(b) / float(c)"),
    ("fsqrt", "RR", OpClass.FPDIV, "a <- sqrt(float(b))"),
    ("fabs", "RR", OpClass.FPADD, "a <- abs(float(b))"),
    ("fneg", "RR", OpClass.FPADD, "a <- -float(b)"),
    ("itof", "RR", OpClass.FPADD, "a <- float(b)"),
    ("ftoi", "RR", OpClass.FPADD, "a <- int(b) (trunc toward zero)"),
    # -- memory ------------------------------------------------------------
    ("ld", "RRI", OpClass.LOAD, "a <- mem[b + imm c]"),
    ("ldx", "RRR", OpClass.LOAD, "a <- mem[b + c]"),
    ("st", "RRI", OpClass.STORE, "mem[b + imm c] <- a"),
    ("stx", "RRR", OpClass.STORE, "mem[b + c] <- a"),
    # -- DTT extensions ----------------------------------------------------
    ("tst", "RRI", OpClass.TSTORE, "triggering store: mem[b + imm c] <- a"),
    ("tstx", "RRR", OpClass.TSTORE, "triggering store: mem[b + c] <- a"),
    ("tcheck", "I", OpClass.SYS, "barrier on support thread id (imm a)"),
    ("treturn", "", OpClass.JUMP, "end of support thread"),
    # -- control flow -------------------------------------------------------
    ("beq", "RRL", OpClass.BRANCH, "if a == b goto label"),
    ("bne", "RRL", OpClass.BRANCH, "if a != b goto label"),
    ("blt", "RRL", OpClass.BRANCH, "if a < b goto label"),
    ("ble", "RRL", OpClass.BRANCH, "if a <= b goto label"),
    ("bgt", "RRL", OpClass.BRANCH, "if a > b goto label"),
    ("bge", "RRL", OpClass.BRANCH, "if a >= b goto label"),
    ("beqz", "RL", OpClass.BRANCH, "if a == 0 goto label"),
    ("bnez", "RL", OpClass.BRANCH, "if a != 0 goto label"),
    ("jmp", "L", OpClass.JUMP, "goto label"),
    ("call", "L", OpClass.JUMP, "push return pc; goto label"),
    ("ret", "", OpClass.JUMP, "pop return pc"),
    # -- system -------------------------------------------------------------
    ("out", "R", OpClass.SYS, "append value of a to machine output"),
    ("nop", "", OpClass.SYS, "no operation"),
    ("halt", "", OpClass.SYS, "stop the context"),
)

_LOAD_OPS = frozenset(n for n, i in OPCODES.items() if i.op_class is OpClass.LOAD)
_STORE_OPS = frozenset(
    n for n, i in OPCODES.items() if i.op_class in (OpClass.STORE, OpClass.TSTORE)
)
_TSTORE_OPS = frozenset(n for n, i in OPCODES.items() if i.op_class is OpClass.TSTORE)
_BRANCH_OPS = frozenset(n for n, i in OPCODES.items() if i.op_class is OpClass.BRANCH)


def is_load(op: str) -> bool:
    """True if ``op`` reads memory."""
    return op in _LOAD_OPS


def is_store(op: str) -> bool:
    """True if ``op`` writes memory (including triggering stores)."""
    return op in _STORE_OPS


def is_triggering_store(op: str) -> bool:
    """True if ``op`` is one of the DTT triggering-store opcodes."""
    return op in _TSTORE_OPS


def is_branch(op: str) -> bool:
    """True if ``op`` is a conditional branch."""
    return op in _BRANCH_OPS


#: opcodes whose ``a`` slot is a *source* register, not a destination
_A_IS_SOURCE = frozenset(
    ["st", "stx", "tst", "tstx", "beq", "bne", "blt", "ble", "bgt", "bge",
     "beqz", "bnez", "out"]
)


def operand_roles(op: str) -> Tuple[Optional[str], Tuple[str, ...]]:
    """Dataflow roles of an opcode's register operands.

    Returns ``(dest_slot, source_slots)`` where slots are ``'a'``/``'b'``/
    ``'c'`` names.  Immediates and labels are not registers and never
    appear.  Used by the redundancy slice analyzer and by tests.
    """
    info = OPCODES.get(op)
    if info is None:
        raise InvalidInstructionError(f"unknown opcode {op!r}")
    slots = []
    slot_names = iter("abc")
    for code in info.signature:
        if code == "L":
            continue
        name = next(slot_names)
        if code == "R":
            slots.append(name)
    if not slots:
        return (None, ())
    if op in _A_IS_SOURCE:
        return (None, tuple(slots))
    return (slots[0], tuple(slots[1:]))


class Instruction:
    """One DTIR instruction.

    ``a``/``b``/``c`` are the operand slots, interpreted per the opcode's
    signature.  ``label`` holds an unresolved control-flow target; after
    :meth:`Program.finalize` the resolved PC is in ``target``.
    """

    __slots__ = ("op", "a", "b", "c", "label", "target")

    def __init__(
        self,
        op: str,
        a: Operand = None,
        b: Operand = None,
        c: Operand = None,
        label: Optional[str] = None,
    ):
        info = OPCODES.get(op)
        if info is None:
            raise InvalidInstructionError(f"unknown opcode {op!r}")
        self.op = op
        self.a = a
        self.b = b
        self.c = c
        self.label = label
        self.target: Optional[int] = None
        self._validate(info)

    # -- validation ---------------------------------------------------------

    def _validate(self, info: OpInfo) -> None:
        operands = [self.a, self.b, self.c]
        signature = info.signature
        if "L" in signature and self.label is None:
            raise InvalidInstructionError(f"{self.op}: missing control-flow label")
        if "L" not in signature and self.label is not None:
            raise InvalidInstructionError(f"{self.op}: unexpected label {self.label!r}")
        slot = 0
        for code in signature:
            if code == "L":
                continue  # labels live in .label, not an operand slot
            value = operands[slot]
            if code == "R":
                if not isinstance(value, int) or isinstance(value, bool):
                    raise InvalidInstructionError(
                        f"{self.op}: operand {slot} must be a register index, "
                        f"got {value!r}"
                    )
                if not 0 <= value < NUM_REGISTERS:
                    raise InvalidInstructionError(
                        f"{self.op}: register index {value} out of range"
                    )
            elif code == "I":
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise InvalidInstructionError(
                        f"{self.op}: operand {slot} must be a numeric immediate, "
                        f"got {value!r}"
                    )
            slot += 1
        for extra in operands[slot:]:
            if extra is not None:
                raise InvalidInstructionError(
                    f"{self.op}: too many operands (signature {signature!r})"
                )

    # -- introspection --------------------------------------------------------

    @property
    def info(self) -> OpInfo:
        """The opcode's static description."""
        return OPCODES[self.op]

    @property
    def op_class(self) -> OpClass:
        """The opcode's functional-unit class."""
        return OPCODES[self.op].op_class

    def operands(self) -> Tuple[Operand, ...]:
        """The populated operand slots, in signature order (labels excluded)."""
        count = sum(1 for code in OPCODES[self.op].signature if code != "L")
        return tuple((self.a, self.b, self.c)[:count])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return (
            self.op == other.op
            and self.a == other.a
            and self.b == other.b
            and self.c == other.c
            and self.label == other.label
        )

    def __hash__(self) -> int:
        return hash((self.op, self.a, self.b, self.c, self.label))

    def __repr__(self) -> str:
        parts = [self.op]
        parts.extend(repr(x) for x in self.operands())
        if self.label is not None:
            parts.append(f"label={self.label!r}")
        return f"Instruction({', '.join(parts)})"
