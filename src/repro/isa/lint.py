"""Static checks ("lints") for finalized DTIR programs.

The builder and finalizer catch structural errors; the linter catches the
*semantic* authoring mistakes that otherwise only surface as wrong answers
or runtime faults — most of them DTT-specific:

``no-halt``
    the program contains no ``halt``: the main context will run off the
    end of the program (an :class:`~repro.errors.ExecutionFault`).
``thread-missing-treturn``
    a declared support thread's body region contains no ``treturn``
    (finalize only checks that *some* treturn exists program-wide).
``halt-in-thread``
    ``halt`` inside a support-thread body faults at runtime (support
    contexts must ``treturn``).
``tstore-in-thread``
    a triggering store inside a support-thread body is silently demoted to
    a plain store unless cascading is enabled — usually a mistake.
``out-in-thread``
    output from a support thread interleaves nondeterministically with
    main-thread output under the timing simulator.
``tcheck-bad-tid``
    a ``tcheck`` references a thread id the program does not declare
    (faults at runtime when an engine is attached).
``tcheck-without-threads``
    DTT consume points in a program that declares no threads (they are
    no-ops without an engine, and an engine cannot be attached).
``unreachable``
    instructions no control path from the entry or any thread entry can
    reach (dead code, or a missing label).

Every finding carries a severity: ``error`` findings will fault or
mis-execute; ``warning`` findings are probably mistakes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import ProgramValidationError
from repro.isa.instructions import is_branch, is_triggering_store
from repro.isa.program import Program

ERROR = "error"
WARNING = "warning"


class Finding:
    """One lint finding."""

    __slots__ = ("severity", "code", "pc", "message")

    def __init__(self, severity: str, code: str, pc: Optional[int],
                 message: str):
        self.severity = severity
        self.code = code
        self.pc = pc
        self.message = message

    def __repr__(self) -> str:
        where = f" at pc {self.pc}" if self.pc is not None else ""
        return f"[{self.severity}] {self.code}{where}: {self.message}"


def _thread_regions(program: Program) -> Dict[str, range]:
    """Thread name -> PC range, from the 'thread:NAME' function records
    the builder emits; threads authored without the builder fall back to
    an entry-only range."""
    regions: Dict[str, range] = {}
    for function in program.functions:
        if function.name.startswith("thread:"):
            regions[function.name[len("thread:"):]] = range(
                function.start, function.end
            )
    for name in program.threads:
        if name not in regions:
            entry = program.thread_entry_pc(name)
            regions[name] = range(entry, entry + 1)
    return regions


def _reachable(program: Program) -> Set[int]:
    """PCs reachable from the entry point or any thread entry."""
    size = len(program.instructions)
    work = [program.entry_pc]
    work.extend(program.thread_entry_pc(name) for name in program.threads)
    seen: Set[int] = set()
    while work:
        pc = work.pop()
        if pc in seen or not 0 <= pc < size:
            continue
        seen.add(pc)
        instruction = program.instructions[pc]
        op = instruction.op
        if op in ("halt", "treturn"):
            continue
        if op == "ret":
            continue  # successors come from the call site's fallthrough
        if op == "jmp":
            work.append(instruction.target)
            continue
        if op == "call":
            work.append(instruction.target)
            work.append(pc + 1)  # the return lands here
            continue
        if is_branch(op):
            work.append(instruction.target)
        work.append(pc + 1)
    return seen


def lint_program(program: Program) -> List[Finding]:
    """Run every check; returns findings sorted errors-first, then by pc."""
    if not program.finalized:
        raise ProgramValidationError("lint requires a finalized program")
    findings: List[Finding] = []
    instructions = program.instructions
    regions = _thread_regions(program)
    num_threads = len(program.threads)

    if not any(i.op == "halt" for i in instructions):
        findings.append(Finding(
            ERROR, "no-halt", None,
            "no halt instruction: the main context will run off the end",
        ))

    for name, region in regions.items():
        body = instructions[region.start:region.stop]
        if not any(i.op == "treturn" for i in body):
            findings.append(Finding(
                ERROR, "thread-missing-treturn", region.start,
                f"support thread {name!r} has no treturn in its body",
            ))
        for offset, instruction in enumerate(body):
            pc = region.start + offset
            if instruction.op == "halt":
                findings.append(Finding(
                    ERROR, "halt-in-thread", pc,
                    f"halt inside support thread {name!r} faults at runtime",
                ))
            elif is_triggering_store(instruction.op):
                findings.append(Finding(
                    WARNING, "tstore-in-thread", pc,
                    f"triggering store inside thread {name!r} is a plain "
                    "store unless cascading is enabled",
                ))
            elif instruction.op == "out":
                findings.append(Finding(
                    WARNING, "out-in-thread", pc,
                    f"output from thread {name!r} interleaves "
                    "nondeterministically under timed execution",
                ))

    for pc, instruction in enumerate(instructions):
        if instruction.op != "tcheck":
            continue
        tid = int(instruction.a)
        if num_threads == 0:
            findings.append(Finding(
                WARNING, "tcheck-without-threads", pc,
                "tcheck in a program that declares no support threads",
            ))
        elif not 0 <= tid < num_threads:
            findings.append(Finding(
                ERROR, "tcheck-bad-tid", pc,
                f"tcheck references thread id {tid}; program declares "
                f"{num_threads} thread(s)",
            ))

    reachable = _reachable(program)
    for pc in range(len(instructions)):
        if pc not in reachable:
            findings.append(Finding(
                WARNING, "unreachable", pc,
                "no control path from the entry or a thread entry reaches "
                "this instruction",
            ))

    findings.sort(key=lambda f: (f.severity != ERROR,
                                 f.pc if f.pc is not None else -1))
    return findings


def errors_only(findings: List[Finding]) -> List[Finding]:
    """The subset of findings that will fault or mis-execute."""
    return [f for f in findings if f.severity == ERROR]
