"""Static checks ("lints") for finalized DTIR programs.

The builder and finalizer catch structural errors; the linter catches the
*semantic* authoring mistakes that otherwise only surface as wrong answers
or runtime faults — most of them DTT-specific:

``no-halt``
    the program contains no ``halt``: the main context will run off the
    end of the program (an :class:`~repro.errors.ExecutionFault`).
``thread-missing-treturn``
    a declared support thread's body region contains no ``treturn``
    (finalize only checks that *some* treturn exists program-wide).
``halt-in-thread``
    ``halt`` inside a support-thread body faults at runtime (support
    contexts must ``treturn``).
``tstore-in-thread``
    a triggering store inside a support-thread body is silently demoted to
    a plain store unless cascading is enabled — usually a mistake.
``out-in-thread``
    output from a support thread interleaves nondeterministically with
    main-thread output under the timing simulator.
``tcheck-bad-tid``
    a ``tcheck`` references a thread id the program does not declare
    (faults at runtime when an engine is attached).
``tcheck-without-threads``
    DTT consume points in a program that declares no threads (they are
    no-ops without an engine, and an engine cannot be attached).
``unreachable``
    instructions no control path from the entry or any thread entry can
    reach (dead code, or a missing label).

Every finding carries a severity: ``error`` findings will fault or
mis-execute; ``warning`` findings are probably mistakes.  The finding
model is shared with the semantic analyzer
(:mod:`repro.analysis.findings`); reachability comes from the precise CFG
(:func:`repro.analysis.cfg.reachable_pcs`), which models call/ret return
sites exactly — code after a ``call`` to a never-returning subroutine is
dead, and a shared subroutine's ``ret`` only flows back to its real
callers.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.cfg import reachable_pcs, thread_regions
from repro.analysis.findings import (ERROR, WARNING, Finding, Severity,
                                     errors_only)
from repro.errors import ProgramValidationError
from repro.isa.instructions import is_triggering_store
from repro.isa.program import Program

__all__ = ["ERROR", "WARNING", "CODES", "Finding", "Severity",
           "errors_only", "lint_program"]

#: lint code -> (severity, one-line description); the docs table must
#: list every code here (tests/test_docs_sync.py)
CODES: Dict[str, Tuple[Severity, str]] = {
    "no-halt": (
        ERROR, "no halt instruction: the main context runs off the end"),
    "thread-missing-treturn": (
        ERROR, "a support thread's body contains no treturn"),
    "halt-in-thread": (
        ERROR, "halt inside a support-thread body faults at runtime"),
    "tstore-in-thread": (
        WARNING,
        "a triggering store in a thread body is a plain store unless "
        "cascading is enabled"),
    "out-in-thread": (
        WARNING,
        "thread output interleaves nondeterministically under timing"),
    "tcheck-bad-tid": (
        ERROR, "tcheck references a thread id the program does not declare"),
    "tcheck-without-threads": (
        WARNING, "tcheck in a program that declares no support threads"),
    "unreachable": (
        WARNING, "no control path from any entry reaches the instruction"),
}


def _thread_regions(program: Program) -> Dict[str, range]:
    """Thread name -> PC range (see :func:`repro.analysis.cfg.thread_regions`,
    which absorbed this helper; the alias keeps old imports working)."""
    return thread_regions(program)


def _reachable(program: Program) -> Set[int]:
    """PCs reachable from the entry point or any thread entry.

    Delegates to the CFG layer's precise reachability: ``ret`` flows only
    to the return sites of calls that actually reach it, and a ``call``'s
    fallthrough is live only if its callee can return.
    """
    return reachable_pcs(program)


def lint_program(program: Program) -> List[Finding]:
    """Run every check; returns findings sorted errors-first, then by pc."""
    if not program.finalized:
        raise ProgramValidationError("lint requires a finalized program")
    findings: List[Finding] = []
    instructions = program.instructions
    regions = _thread_regions(program)
    num_threads = len(program.threads)

    if not any(i.op == "halt" for i in instructions):
        findings.append(Finding(
            ERROR, "no-halt", None,
            "no halt instruction: the main context will run off the end",
        ))

    for name, region in regions.items():
        body = instructions[region.start:region.stop]
        if not any(i.op == "treturn" for i in body):
            findings.append(Finding(
                ERROR, "thread-missing-treturn", region.start,
                f"support thread {name!r} has no treturn in its body",
            ))
        for offset, instruction in enumerate(body):
            pc = region.start + offset
            if instruction.op == "halt":
                findings.append(Finding(
                    ERROR, "halt-in-thread", pc,
                    f"halt inside support thread {name!r} faults at runtime",
                ))
            elif is_triggering_store(instruction.op):
                findings.append(Finding(
                    WARNING, "tstore-in-thread", pc,
                    f"triggering store inside thread {name!r} is a plain "
                    "store unless cascading is enabled",
                ))
            elif instruction.op == "out":
                findings.append(Finding(
                    WARNING, "out-in-thread", pc,
                    f"output from thread {name!r} interleaves "
                    "nondeterministically under timed execution",
                ))

    for pc, instruction in enumerate(instructions):
        if instruction.op != "tcheck":
            continue
        tid = int(instruction.a)
        if num_threads == 0:
            findings.append(Finding(
                WARNING, "tcheck-without-threads", pc,
                "tcheck in a program that declares no support threads",
            ))
        elif not 0 <= tid < num_threads:
            findings.append(Finding(
                ERROR, "tcheck-bad-tid", pc,
                f"tcheck references thread id {tid}; program declares "
                f"{num_threads} thread(s)",
            ))

    reachable = _reachable(program)
    for pc in range(len(instructions)):
        if pc not in reachable:
            findings.append(Finding(
                WARNING, "unreachable", pc,
                "no control path from the entry or a thread entry reaches "
                "this instruction",
            ))

    findings.sort(key=Finding.sort_key)
    return findings
