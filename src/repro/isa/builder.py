"""Structured program builder — the authoring DSL for DTIR workloads.

Writing kernels directly as instruction lists is error-prone, so the
builder layers three conveniences over :class:`~repro.isa.program.Program`:

* **symbolic registers** — ``b.reg("i")`` allocates a free architected
  register; scopes (``with b.scratch(3) as (t0, t1, t2):``) free them
  automatically, so kernels never hard-code register numbers;
* **structured control flow** — ``for_range``, ``loop`` (with break /
  continue), and ``if_`` context managers that expand to labels and
  branches with generated, collision-free label names;
* **pseudo-instructions** — ``la`` (load data-symbol address, resolved at
  finalize) and one wrapper method per real opcode.

Example::

    b = ProgramBuilder()
    b.data("xs", [3, 1, 4, 1, 5])
    with b.function("main"):
        with b.scratch(3) as (i, base, acc):
            b.la(base, "xs")
            b.li(acc, 0)
            with b.for_range(i, 0, 5):
                with b.scratch(1) as (v,):
                    b.ldx(v, base, i)
                    b.add(acc, acc, v)
            b.out(acc)
            b.halt()
    program = b.build()

Register-allocation contract: allocations are global to the program being
built, and freed registers are reused.  Do **not** hold values in scratch
registers across a ``call`` unless the callee's allocations are provably
disjoint; for long-lived values use :meth:`ProgramBuilder.global_reg`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import BuilderError
from repro.isa.instructions import Instruction
from repro.isa.program import Number, Program
from repro.isa.registers import (
    NUM_REGISTERS,
    Reg,
    TRIGGER_ADDR_REG,
    TRIGGER_OLD_VALUE_REG,
    TRIGGER_VALUE_REG,
)

RegLike = int


class _IfHandle:
    """Handle yielded by :meth:`ProgramBuilder.if_` supporting ``else_()``."""

    def __init__(self, builder: "ProgramBuilder", else_label: str, end_label: str):
        self._builder = builder
        self._else_label = else_label
        self._end_label = end_label
        self.has_else = False

    def else_(self) -> None:
        """Start the else-arm of the enclosing ``if_`` block."""
        if self.has_else:
            raise BuilderError("else_() called twice in one if_ block")
        self.has_else = True
        self._builder.jmp(self._end_label)
        self._builder.label(self._else_label)


class _LoopHandle:
    """Handle yielded by :meth:`ProgramBuilder.loop` for break/continue."""

    def __init__(self, builder: "ProgramBuilder", top: str, end: str):
        self._builder = builder
        self.top_label = top
        self.end_label = end

    def break_(self) -> None:
        self._builder.jmp(self.end_label)

    def continue_(self) -> None:
        self._builder.jmp(self.top_label)

    def break_if_zero(self, reg: RegLike) -> None:
        self._builder.beqz(reg, self.end_label)

    def break_if_nonzero(self, reg: RegLike) -> None:
        self._builder.bnez(reg, self.end_label)

    def continue_if_zero(self, reg: RegLike) -> None:
        self._builder.beqz(reg, self.top_label)

    def continue_if_nonzero(self, reg: RegLike) -> None:
        self._builder.bnez(reg, self.top_label)


class ProgramBuilder:
    """Incrementally constructs a :class:`~repro.isa.program.Program`."""

    #: registers never handed out by the allocator: the three trigger-argument
    #: registers, so support-thread bodies can rely on them surviving until
    #: the body explicitly reads them.
    RESERVED = (TRIGGER_ADDR_REG, TRIGGER_VALUE_REG, TRIGGER_OLD_VALUE_REG)

    def __init__(self) -> None:
        self.program = Program()
        self._free: List[int] = [
            r for r in range(NUM_REGISTERS - 1, -1, -1) if r not in self.RESERVED
        ]
        self._allocated: dict[int, str] = {}
        self._label_counter = 0
        self._open_functions: List[Tuple[str, int]] = []
        self._built = False

    # -- registers -----------------------------------------------------------

    @property
    def trigger_addr(self) -> Reg:
        """Register holding the triggering address inside a thread body."""
        return Reg(TRIGGER_ADDR_REG)

    @property
    def trigger_value(self) -> Reg:
        """Register holding the newly stored value inside a thread body."""
        return Reg(TRIGGER_VALUE_REG)

    @property
    def trigger_old_value(self) -> Reg:
        """Register holding the overwritten value inside a thread body."""
        return Reg(TRIGGER_OLD_VALUE_REG)

    def reg(self, name: str = "") -> Reg:
        """Allocate a free register (lowest index first)."""
        if not self._free:
            held = ", ".join(
                f"r{r}={n!r}" for r, n in sorted(self._allocated.items())
            )
            raise BuilderError(f"register pool exhausted; held: {held}")
        index = self._free.pop()
        self._allocated[index] = name
        return Reg(index)

    def global_reg(self, name: str = "") -> Reg:
        """Allocate a register intended to stay live for the whole program.

        Identical to :meth:`reg` except in intent: never freed by scopes.
        """
        return self.reg(name or "global")

    def free(self, *regs: RegLike) -> None:
        """Return registers to the pool."""
        for reg in regs:
            index = int(reg)
            if index not in self._allocated:
                raise BuilderError(f"r{index} is not currently allocated")
            del self._allocated[index]
            self._free.append(index)
        # keep low registers preferred, pool stored in descending order
        self._free.sort(reverse=True)

    @contextmanager
    def scratch(self, count: int, prefix: str = "t") -> Iterator[Tuple[Reg, ...]]:
        """Allocate ``count`` temporaries, freed on scope exit."""
        regs = tuple(self.reg(f"{prefix}{i}") for i in range(count))
        try:
            yield regs
        finally:
            self.free(*regs)

    # -- labels / functions / threads --------------------------------------------

    def label(self, name: str) -> str:
        """Bind a label at the current PC; returns the name."""
        self.program.add_label(name)
        return name

    def fresh_label(self, stem: str) -> str:
        """Generate a unique label name (not yet bound)."""
        self._label_counter += 1
        return f"__{stem}_{self._label_counter}"

    @contextmanager
    def function(self, name: str) -> Iterator[str]:
        """Open a function: binds ``name`` as a label and records its range."""
        start = len(self.program.instructions)
        self.program.add_label(name)
        self._open_functions.append((name, start))
        try:
            yield name
        finally:
            opened, start = self._open_functions.pop()
            self.program.add_function(opened, start, len(self.program.instructions))

    @contextmanager
    def thread(self, name: str) -> Iterator[str]:
        """Open a DTT support-thread body.

        Declares the thread in the program (entry = generated label) and
        opens a function named ``thread:{name}`` for its body.  The body
        must end with :meth:`treturn`.
        """
        entry = f"__thread_{name}"
        self.program.declare_thread(name, entry)
        start = len(self.program.instructions)
        self.program.add_label(entry)
        try:
            yield entry
        finally:
            self.program.add_function(f"thread:{name}", start,
                                      len(self.program.instructions))

    # -- data ------------------------------------------------------------------

    def data(self, name: str, values: Sequence[Number]) -> str:
        """Declare a named static array; returns the symbol name."""
        self.program.add_data(name, values)
        return name

    def zeros(self, name: str, size: int) -> str:
        """Declare a zero-initialized array of ``size`` words."""
        return self.data(name, [0] * size)

    def la(self, rd: RegLike, symbol: str, offset: int = 0) -> int:
        """Load the address of ``symbol`` (+ word offset) into ``rd``.

        Expands to ``li`` whose immediate is patched at finalize time.
        """
        pc = self._emit(Instruction("li", int(rd), 0))
        self.program.add_symbol_patch(pc, "b", symbol, offset)
        return pc

    # -- structured control flow ---------------------------------------------------

    @contextmanager
    def for_range(
        self,
        counter: RegLike,
        start: Union[int, Reg],
        stop: Union[int, Reg],
        step: int = 1,
    ) -> Iterator[None]:
        """Counted loop: ``for counter in range(start, stop, step)``.

        ``start`` and ``stop`` may be immediates or registers holding the
        bound.  ``step`` must be a nonzero immediate; negative steps count
        down (loop exits when counter <= stop for step < 0 ... i.e. the
        Python ``range`` convention).
        """
        if step == 0:
            raise BuilderError("for_range step must be nonzero")
        if isinstance(start, Reg):
            self.mov(counter, start)
        elif isinstance(start, (int, float)) and not isinstance(start, bool):
            self.li(counter, start)
        else:
            raise BuilderError(f"bad for_range start {start!r}")
        bound_is_temp = False
        if isinstance(stop, Reg):
            bound = stop
        else:
            bound = self.reg("for_bound")
            self.li(bound, stop)
            bound_is_temp = True
        top = self.fresh_label("for_top")
        end = self.fresh_label("for_end")
        self.label(top)
        if step > 0:
            self.bge(counter, bound, end)
        else:
            self.ble(counter, bound, end)
        try:
            yield
        finally:
            self.addi(counter, counter, step)
            self.jmp(top)
            self.label(end)
            if bound_is_temp:
                self.free(bound)

    @contextmanager
    def loop(self) -> Iterator[_LoopHandle]:
        """Unbounded loop; exit via the yielded handle's break helpers."""
        top = self.fresh_label("loop_top")
        end = self.fresh_label("loop_end")
        handle = _LoopHandle(self, top, end)
        self.label(top)
        try:
            yield handle
        finally:
            self.jmp(top)
            self.label(end)

    @contextmanager
    def if_(self, cond: RegLike) -> Iterator[_IfHandle]:
        """Execute the body when ``cond`` is nonzero; supports ``else_()``."""
        else_label = self.fresh_label("else")
        end_label = self.fresh_label("endif")
        handle = _IfHandle(self, else_label, end_label)
        self.beqz(cond, else_label)
        try:
            yield handle
        finally:
            if handle.has_else:
                self.label(end_label)
            else:
                self.label(else_label)

    @contextmanager
    def if_zero(self, cond: RegLike) -> Iterator[_IfHandle]:
        """Execute the body when ``cond`` is zero; supports ``else_()``."""
        else_label = self.fresh_label("else")
        end_label = self.fresh_label("endif")
        handle = _IfHandle(self, else_label, end_label)
        self.bnez(cond, else_label)
        try:
            yield handle
        finally:
            if handle.has_else:
                self.label(end_label)
            else:
                self.label(else_label)

    # -- building ---------------------------------------------------------------------

    def build(self, entry: str = "main") -> Program:
        """Finalize and return the program.  The builder is then spent."""
        if self._built:
            raise BuilderError("build() called twice")
        if self._open_functions:
            names = ", ".join(name for name, _ in self._open_functions)
            raise BuilderError(f"unclosed function scope(s): {names}")
        self._built = True
        self.program.entry_label = entry
        return self.program.finalize()

    # -- raw emission ------------------------------------------------------------------

    def _emit(self, instruction: Instruction) -> int:
        if self._built:
            raise BuilderError("builder already built its program")
        return self.program.append(instruction)

    def emit(self, op: str, a=None, b=None, c=None, label: Optional[str] = None) -> int:
        """Emit an arbitrary instruction (escape hatch)."""
        return self._emit(Instruction(op, _opnd(a), _opnd(b), _opnd(c), label=label))

    # -- one wrapper per opcode ----------------------------------------------------------

    def li(self, rd: RegLike, imm: Number) -> int:
        return self._emit(Instruction("li", int(rd), imm))

    def mov(self, rd: RegLike, rs: RegLike) -> int:
        return self._emit(Instruction("mov", int(rd), int(rs)))

    def add(self, rd, rs, rt) -> int:
        return self._emit(Instruction("add", int(rd), int(rs), int(rt)))

    def sub(self, rd, rs, rt) -> int:
        return self._emit(Instruction("sub", int(rd), int(rs), int(rt)))

    def mul(self, rd, rs, rt) -> int:
        return self._emit(Instruction("mul", int(rd), int(rs), int(rt)))

    def idiv(self, rd, rs, rt) -> int:
        return self._emit(Instruction("idiv", int(rd), int(rs), int(rt)))

    def imod(self, rd, rs, rt) -> int:
        return self._emit(Instruction("imod", int(rd), int(rs), int(rt)))

    def and_(self, rd, rs, rt) -> int:
        return self._emit(Instruction("and_", int(rd), int(rs), int(rt)))

    def or_(self, rd, rs, rt) -> int:
        return self._emit(Instruction("or_", int(rd), int(rs), int(rt)))

    def xor(self, rd, rs, rt) -> int:
        return self._emit(Instruction("xor", int(rd), int(rs), int(rt)))

    def shl(self, rd, rs, rt) -> int:
        return self._emit(Instruction("shl", int(rd), int(rs), int(rt)))

    def shr(self, rd, rs, rt) -> int:
        return self._emit(Instruction("shr", int(rd), int(rs), int(rt)))

    def slt(self, rd, rs, rt) -> int:
        return self._emit(Instruction("slt", int(rd), int(rs), int(rt)))

    def sle(self, rd, rs, rt) -> int:
        return self._emit(Instruction("sle", int(rd), int(rs), int(rt)))

    def sgt(self, rd, rs, rt) -> int:
        return self._emit(Instruction("sgt", int(rd), int(rs), int(rt)))

    def sge(self, rd, rs, rt) -> int:
        return self._emit(Instruction("sge", int(rd), int(rs), int(rt)))

    def seq(self, rd, rs, rt) -> int:
        return self._emit(Instruction("seq", int(rd), int(rs), int(rt)))

    def sne(self, rd, rs, rt) -> int:
        return self._emit(Instruction("sne", int(rd), int(rs), int(rt)))

    def addi(self, rd, rs, imm: Number) -> int:
        return self._emit(Instruction("addi", int(rd), int(rs), imm))

    def subi(self, rd, rs, imm: Number) -> int:
        return self._emit(Instruction("subi", int(rd), int(rs), imm))

    def muli(self, rd, rs, imm: Number) -> int:
        return self._emit(Instruction("muli", int(rd), int(rs), imm))

    def andi(self, rd, rs, imm: int) -> int:
        return self._emit(Instruction("andi", int(rd), int(rs), imm))

    def ori(self, rd, rs, imm: int) -> int:
        return self._emit(Instruction("ori", int(rd), int(rs), imm))

    def xori(self, rd, rs, imm: int) -> int:
        return self._emit(Instruction("xori", int(rd), int(rs), imm))

    def shli(self, rd, rs, imm: int) -> int:
        return self._emit(Instruction("shli", int(rd), int(rs), imm))

    def shri(self, rd, rs, imm: int) -> int:
        return self._emit(Instruction("shri", int(rd), int(rs), imm))

    def slti(self, rd, rs, imm: Number) -> int:
        return self._emit(Instruction("slti", int(rd), int(rs), imm))

    def sgti(self, rd, rs, imm: Number) -> int:
        return self._emit(Instruction("sgti", int(rd), int(rs), imm))

    def seqi(self, rd, rs, imm: Number) -> int:
        return self._emit(Instruction("seqi", int(rd), int(rs), imm))

    def fadd(self, rd, rs, rt) -> int:
        return self._emit(Instruction("fadd", int(rd), int(rs), int(rt)))

    def fsub(self, rd, rs, rt) -> int:
        return self._emit(Instruction("fsub", int(rd), int(rs), int(rt)))

    def fmul(self, rd, rs, rt) -> int:
        return self._emit(Instruction("fmul", int(rd), int(rs), int(rt)))

    def fdiv(self, rd, rs, rt) -> int:
        return self._emit(Instruction("fdiv", int(rd), int(rs), int(rt)))

    def fsqrt(self, rd, rs) -> int:
        return self._emit(Instruction("fsqrt", int(rd), int(rs)))

    def fabs(self, rd, rs) -> int:
        return self._emit(Instruction("fabs", int(rd), int(rs)))

    def fneg(self, rd, rs) -> int:
        return self._emit(Instruction("fneg", int(rd), int(rs)))

    def itof(self, rd, rs) -> int:
        return self._emit(Instruction("itof", int(rd), int(rs)))

    def ftoi(self, rd, rs) -> int:
        return self._emit(Instruction("ftoi", int(rd), int(rs)))

    def ld(self, rd, ra, offset: int = 0) -> int:
        return self._emit(Instruction("ld", int(rd), int(ra), offset))

    def ldx(self, rd, ra, rb) -> int:
        return self._emit(Instruction("ldx", int(rd), int(ra), int(rb)))

    def st(self, rs, ra, offset: int = 0) -> int:
        return self._emit(Instruction("st", int(rs), int(ra), offset))

    def stx(self, rs, ra, rb) -> int:
        return self._emit(Instruction("stx", int(rs), int(ra), int(rb)))

    def tst(self, rs, ra, offset: int = 0) -> int:
        return self._emit(Instruction("tst", int(rs), int(ra), offset))

    def tstx(self, rs, ra, rb) -> int:
        return self._emit(Instruction("tstx", int(rs), int(ra), int(rb)))

    def tcheck(self, thread_id: int) -> int:
        return self._emit(Instruction("tcheck", thread_id))

    def tcheck_thread(self, name: str) -> int:
        """Emit a tcheck for a thread by name (must be declared already).

        Thread ids are assigned by declaration order, so thread bodies must
        be built *before* the code that consumes their results — define
        support threads first, then ``main``.
        """
        names = list(self.program.threads)
        if name not in names:
            raise BuilderError(
                f"thread {name!r} not yet declared; declare thread bodies "
                f"before emitting their consume points (have: {names})"
            )
        return self.tcheck(names.index(name))

    def treturn(self) -> int:
        return self._emit(Instruction("treturn"))

    def beq(self, rs, rt, label: str) -> int:
        return self._emit(Instruction("beq", int(rs), int(rt), label=label))

    def bne(self, rs, rt, label: str) -> int:
        return self._emit(Instruction("bne", int(rs), int(rt), label=label))

    def blt(self, rs, rt, label: str) -> int:
        return self._emit(Instruction("blt", int(rs), int(rt), label=label))

    def ble(self, rs, rt, label: str) -> int:
        return self._emit(Instruction("ble", int(rs), int(rt), label=label))

    def bgt(self, rs, rt, label: str) -> int:
        return self._emit(Instruction("bgt", int(rs), int(rt), label=label))

    def bge(self, rs, rt, label: str) -> int:
        return self._emit(Instruction("bge", int(rs), int(rt), label=label))

    def beqz(self, rs, label: str) -> int:
        return self._emit(Instruction("beqz", int(rs), label=label))

    def bnez(self, rs, label: str) -> int:
        return self._emit(Instruction("bnez", int(rs), label=label))

    def jmp(self, label: str) -> int:
        return self._emit(Instruction("jmp", label=label))

    def call(self, label: str) -> int:
        return self._emit(Instruction("call", label=label))

    def ret(self) -> int:
        return self._emit(Instruction("ret"))

    def out(self, rs) -> int:
        return self._emit(Instruction("out", int(rs)))

    def nop(self) -> int:
        return self._emit(Instruction("nop"))

    def halt(self) -> int:
        return self._emit(Instruction("halt"))


def _opnd(value):
    """Normalize a builder operand: Reg -> int, pass numbers through."""
    if isinstance(value, Reg):
        return int(value)
    return value


def _attach_wrapper_docstrings() -> None:
    """Give every bare opcode wrapper the opcode table's description.

    The wrappers are one-liners whose semantics live in
    :data:`repro.isa.instructions.OPCODES`; generating their docstrings
    from that table keeps the two permanently in sync.
    """
    from repro.isa.instructions import OPCODES as _OPCODES

    for _name, _info in _OPCODES.items():
        _method = getattr(ProgramBuilder, _name, None)
        if _method is not None and not _method.__doc__:
            _method.__doc__ = f"Emit ``{_name}``: {_info.description}."


_attach_wrapper_docstrings()
