"""Redundant-load and silent-store profiling.

Definitions (following the paper's §2):

* A dynamic **load is redundant** when it fetches the *same value* that
  the most recent previous load from the *same address* returned — i.e.
  the location's data was already brought into the core and has not
  changed since.  The first load of an address is never redundant.  (This
  per-location definition is the one under which the paper's "78 % of all
  loads fetch redundant data" is meaningful: a loop re-walking an
  unchanged array is fetching entirely redundant data even though each
  static load visits many addresses.)
* A dynamic **store is silent** when the value it writes equals the value
  already in memory.  Silent stores are exactly what the DTT same-value
  filter suppresses.

Redundancy is attributed to static sites as well, so the report can show
which loops carry the redundancy; site attribution uses the same
per-location definition.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.machine.events import MachineObserver
from repro.obs.sampling import (AddressSampler, SampleEstimate,
                                cluster_coverage_interval,
                                kish_effective_size)

Number = Union[int, float]

#: sentinel distinguishing "never loaded" from any real value
_NEVER = object()

#: per-site cap on the distinct-sampled-address maps that feed the
#: cluster-aware CIs; past this many clusters the interval is tight
#: anyway, and undercounting clusters only widens it (conservative)
_SITE_ADDRESS_CAP = 1024


class LoadSiteStats:
    """Counters for one static load site."""

    __slots__ = ("pc", "dynamic", "redundant")

    def __init__(self, pc: int):
        self.pc = pc
        self.dynamic = 0
        self.redundant = 0

    @property
    def redundant_fraction(self) -> float:
        return self.redundant / self.dynamic if self.dynamic else 0.0

    def __repr__(self) -> str:
        return (
            f"LoadSiteStats(pc={self.pc}, {self.redundant}/{self.dynamic} "
            f"redundant)"
        )


class StoreSiteStats:
    """Counters for one static store site."""

    __slots__ = ("pc", "dynamic", "silent", "triggering")

    def __init__(self, pc: int, triggering: bool):
        self.pc = pc
        self.dynamic = 0
        self.silent = 0
        self.triggering = triggering

    @property
    def silent_fraction(self) -> float:
        return self.silent / self.dynamic if self.dynamic else 0.0

    def __repr__(self) -> str:
        return (
            f"StoreSiteStats(pc={self.pc}, {self.silent}/{self.dynamic} "
            f"silent{', triggering' if self.triggering else ''})"
        )


class RedundantLoadProfiler(MachineObserver):
    """Observer computing redundant-load / silent-store statistics."""

    def __init__(self) -> None:
        self._loads: Dict[int, LoadSiteStats] = {}
        self._stores: Dict[int, StoreSiteStats] = {}
        # per-location last-loaded value (the redundancy definition)
        self._last_loaded: Dict[int, Number] = {}
        self.total_loads = 0
        self.redundant_loads = 0
        self.total_stores = 0
        self.silent_stores = 0
        self.total_instructions = 0

    # -- observer hooks ---------------------------------------------------------

    def on_instruction(self, ctx, pc, instruction) -> None:
        self.total_instructions += 1

    def on_load(self, ctx, pc, address, value) -> None:
        site = self._loads.get(pc)
        if site is None:
            site = self._loads[pc] = LoadSiteStats(pc)
        site.dynamic += 1
        self.total_loads += 1
        last = self._last_loaded.get(address, _NEVER)
        if last == value and last is not _NEVER:
            site.redundant += 1
            self.redundant_loads += 1
        self._last_loaded[address] = value

    def on_store(self, ctx, pc, address, old_value, new_value, triggering) -> None:
        site = self._stores.get(pc)
        if site is None:
            site = self._stores[pc] = StoreSiteStats(pc, triggering)
        site.dynamic += 1
        self.total_stores += 1
        if old_value == new_value:
            site.silent += 1
            self.silent_stores += 1

    # -- reporting ------------------------------------------------------------------

    @property
    def redundant_load_fraction(self) -> float:
        return self.redundant_loads / self.total_loads if self.total_loads else 0.0

    @property
    def silent_store_fraction(self) -> float:
        return self.silent_stores / self.total_stores if self.total_stores else 0.0

    def load_sites(self) -> List[LoadSiteStats]:
        """All load sites, most dynamic executions first."""
        return sorted(self._loads.values(), key=lambda s: -s.dynamic)

    def store_sites(self) -> List[StoreSiteStats]:
        """All store sites, most dynamic executions first."""
        return sorted(self._stores.values(), key=lambda s: -s.dynamic)

    def hottest_redundant_loads(self, count: int = 10) -> List[LoadSiteStats]:
        """Sites contributing the most redundant dynamic loads."""
        return sorted(self._loads.values(), key=lambda s: -s.redundant)[:count]

    def summary(self) -> Dict[str, float]:
        """Aggregate counters and fractions for reports."""
        return {
            "total_instructions": self.total_instructions,
            "total_loads": self.total_loads,
            "redundant_loads": self.redundant_loads,
            "redundant_load_fraction": self.redundant_load_fraction,
            "total_stores": self.total_stores,
            "silent_stores": self.silent_stores,
            "silent_store_fraction": self.silent_store_fraction,
        }

    def __repr__(self) -> str:
        return (
            f"RedundantLoadProfiler({self.redundant_loads}/{self.total_loads} "
            f"loads redundant = {self.redundant_load_fraction:.1%})"
        )


# ---------------------------------------------------------------------------
# sampled profiling (bounded memory, estimates with confidence intervals)
# ---------------------------------------------------------------------------


class SampledLoadSiteStats:
    """Estimated counters for one static load site.

    ``dynamic`` is exact (a counter costs no memory); redundancy is
    *estimated* from the loads whose addresses fell in the tracked
    subset.  ``redundant`` scales the estimate back to a count so
    consumers written against :class:`LoadSiteStats` (the advisor, the
    HTML top-sites tables) keep working; ``estimate`` carries the CI —
    a :func:`~repro.obs.sampling.cluster_coverage_interval`, because a
    site's loads cluster by address and a binomial interval over sampled
    loads would be confidently wrong whenever the hash sample misses the
    site's hot addresses.
    """

    __slots__ = ("pc", "rate", "dynamic", "sampled", "sampled_redundant",
                 "_addresses")

    def __init__(self, pc: int, rate: int = 1):
        self.pc = pc
        self.rate = rate
        self.dynamic = 0
        self.sampled = 0
        self.sampled_redundant = 0
        # sampled address -> load count; the cluster sizes behind the
        # Kish effective sample size of this site's estimate
        self._addresses: Dict[int, int] = {}

    def note_sampled(self, address: int, redundant: bool) -> None:
        """Record one exactly-classified load of a sampled address."""
        self.sampled += 1
        if redundant:
            self.sampled_redundant += 1
        if address in self._addresses:
            self._addresses[address] += 1
        elif len(self._addresses) < _SITE_ADDRESS_CAP:
            self._addresses[address] = 1

    @property
    def sampled_addresses(self) -> int:
        return len(self._addresses)

    @property
    def estimate(self) -> SampleEstimate:
        low, high = cluster_coverage_interval(
            self.sampled_redundant, self.sampled,
            kish_effective_size(self._addresses.values()),
            self.dynamic, self.rate)
        return SampleEstimate.from_interval(
            self.sampled_redundant, self.sampled, self.redundant_fraction,
            low, high)

    @property
    def redundant_fraction(self) -> float:
        return (self.sampled_redundant / self.sampled
                if self.sampled else 0.0)

    @property
    def redundant(self) -> int:
        """Estimated redundant-load count, scaled to the exact dynamic count."""
        return round(self.dynamic * self.redundant_fraction)

    @property
    def ci_low(self) -> float:
        return self.estimate.ci_low

    @property
    def ci_high(self) -> float:
        return self.estimate.ci_high

    @property
    def ci_width(self) -> float:
        return self.estimate.ci_width

    def __repr__(self) -> str:
        return (
            f"SampledLoadSiteStats(pc={self.pc}, "
            f"~{self.redundant_fraction:.1%} redundant "
            f"[{self.ci_low:.1%}, {self.ci_high:.1%}] "
            f"from {self.sampled}/{self.dynamic} sampled)"
        )


class SampledStoreSiteStats:
    """Estimated counters for one static store site (silent-store rate).

    Same cluster-coverage estimation as :class:`SampledLoadSiteStats`:
    silent stores concentrate on hot addresses exactly as redundant
    loads do.
    """

    __slots__ = ("pc", "rate", "dynamic", "sampled", "sampled_silent",
                 "triggering", "_addresses")

    def __init__(self, pc: int, triggering: bool, rate: int = 1):
        self.pc = pc
        self.rate = rate
        self.dynamic = 0
        self.sampled = 0
        self.sampled_silent = 0
        self.triggering = triggering
        self._addresses: Dict[int, int] = {}

    def note_sampled(self, address: int, silent: bool) -> None:
        """Record one exactly-classified store to a sampled address."""
        self.sampled += 1
        if silent:
            self.sampled_silent += 1
        if address in self._addresses:
            self._addresses[address] += 1
        elif len(self._addresses) < _SITE_ADDRESS_CAP:
            self._addresses[address] = 1

    @property
    def sampled_addresses(self) -> int:
        return len(self._addresses)

    @property
    def estimate(self) -> SampleEstimate:
        low, high = cluster_coverage_interval(
            self.sampled_silent, self.sampled,
            kish_effective_size(self._addresses.values()),
            self.dynamic, self.rate)
        return SampleEstimate.from_interval(
            self.sampled_silent, self.sampled, self.silent_fraction,
            low, high)

    @property
    def silent_fraction(self) -> float:
        return self.sampled_silent / self.sampled if self.sampled else 0.0

    @property
    def silent(self) -> int:
        """Estimated silent-store count, scaled to the exact dynamic count."""
        return round(self.dynamic * self.silent_fraction)

    @property
    def ci_low(self) -> float:
        return self.estimate.ci_low

    @property
    def ci_high(self) -> float:
        return self.estimate.ci_high

    @property
    def ci_width(self) -> float:
        return self.estimate.ci_width

    def __repr__(self) -> str:
        return (
            f"SampledStoreSiteStats(pc={self.pc}, "
            f"~{self.silent_fraction:.1%} silent "
            f"from {self.sampled}/{self.dynamic} sampled"
            f"{', triggering' if self.triggering else ''})"
        )


class SampledRedundantLoadProfiler(MachineObserver):
    """Bounded-memory redundancy profiler: estimates with CIs.

    Samples *addresses*, not dynamic events: a seeded
    :class:`~repro.obs.sampling.AddressSampler` selects a fixed ``1/k``
    subset of locations, and only those locations get a last-loaded
    value tracked.  Every dynamic load to a sampled location is then
    classified *exactly* (the redundancy definition needs the previous
    load of the same address, which event-sampling cannot see) — the
    design of sampling-based redundancy profilers for production
    software (PAPERS.md, "Redundant Loads: A Software Inefficiency
    Indicator").

    Because redundancy clusters by address (a few hot locations carry
    most of the redundant traffic), the confidence intervals are
    :func:`~repro.obs.sampling.cluster_coverage_interval` values rather
    than naive binomial ones: the effective sample size is the number of
    sampled *addresses*, and dynamic-event mass that the sampled
    addresses provably do not represent (by the Horvitz-Thompson
    scale-up against the exact ``total_loads`` counter) contributes its
    full [0, 1] uncertainty.  The point estimate stays the pooled
    sampled fraction; when the hash sample misses the hot addresses the
    estimate can be far off, but the interval honestly says so instead
    of excluding the truth.

    Memory is bounded twice over: the last-value map only holds sampled
    addresses (footprint/k), and ``max_tracked_addresses`` is a hard
    budget past which new addresses are refused (counted in
    ``tracked_addresses_capped``) — peak memory is fixed regardless of
    run length or footprint.

    Interface-compatible with :class:`RedundantLoadProfiler`:
    ``load_sites()`` / ``store_sites()`` / ``hottest_redundant_loads()``
    / ``summary()`` and the fraction properties all exist, with counts
    scaled from the estimates, so the advisor and
    :meth:`~repro.obs.causality.CausalGraph.site_attribution` consume
    either profiler unchanged.
    """

    def __init__(self, sample_rate: int = 64, seed: int = 0,
                 max_tracked_addresses: int = 1 << 20) -> None:
        self.sampler = AddressSampler(sample_rate, seed)
        self.max_tracked_addresses = max_tracked_addresses
        self._loads: Dict[int, SampledLoadSiteStats] = {}
        self._stores: Dict[int, SampledStoreSiteStats] = {}
        # last-loaded value, sampled addresses only (the memory budget)
        self._last_loaded: Dict[int, Number] = {}
        self.total_loads = 0
        self.total_stores = 0
        self.total_instructions = 0
        self.sampled_loads = 0
        self.sampled_redundant = 0
        self.sampled_stores = 0
        self.sampled_silent = 0
        # sampled address -> event count: the cluster sizes behind the
        # aggregate estimates' Kish effective sample sizes
        self._load_counts: Dict[int, int] = {}
        self._store_counts: Dict[int, int] = {}
        #: sampled addresses refused because the budget was full
        self.tracked_addresses_capped = 0

    # -- observer hooks ---------------------------------------------------------

    def on_instruction(self, ctx, pc, instruction) -> None:
        self.total_instructions += 1

    def on_load(self, ctx, pc, address, value) -> None:
        site = self._loads.get(pc)
        if site is None:
            site = self._loads[pc] = SampledLoadSiteStats(pc, self.sample_rate)
        site.dynamic += 1
        self.total_loads += 1
        if not self.sampler.sampled(address):
            return
        last_loaded = self._last_loaded
        last = last_loaded.get(address, _NEVER)
        if last is _NEVER and len(last_loaded) >= self.max_tracked_addresses:
            self.tracked_addresses_capped += 1
            return
        redundant = last == value and last is not _NEVER
        site.note_sampled(address, redundant)
        self.sampled_loads += 1
        self._load_counts[address] = self._load_counts.get(address, 0) + 1
        if redundant:
            self.sampled_redundant += 1
        last_loaded[address] = value

    def on_store(self, ctx, pc, address, old_value, new_value,
                 triggering) -> None:
        site = self._stores.get(pc)
        if site is None:
            site = self._stores[pc] = SampledStoreSiteStats(
                pc, triggering, self.sample_rate)
        site.dynamic += 1
        self.total_stores += 1
        if not self.sampler.sampled(address):
            return
        store_counts = self._store_counts
        if (address not in store_counts
                and len(store_counts) >= self.max_tracked_addresses):
            self.tracked_addresses_capped += 1
            return
        store_counts[address] = store_counts.get(address, 0) + 1
        silent = old_value == new_value
        site.note_sampled(address, silent)
        self.sampled_stores += 1
        if silent:
            self.sampled_silent += 1

    # -- reporting ------------------------------------------------------------------

    @property
    def sample_rate(self) -> int:
        return self.sampler.rate

    @property
    def seed(self) -> int:
        return self.sampler.seed

    @property
    def load_estimate(self) -> SampleEstimate:
        """Aggregate redundant-load estimate over every sampled load,
        with a cluster-coverage CI (clusters = tracked addresses)."""
        pooled = (self.sampled_redundant / self.sampled_loads
                  if self.sampled_loads else 0.0)
        low, high = cluster_coverage_interval(
            self.sampled_redundant, self.sampled_loads,
            kish_effective_size(self._load_counts.values()),
            self.total_loads, self.sample_rate)
        return SampleEstimate.from_interval(
            self.sampled_redundant, self.sampled_loads, pooled, low, high)

    @property
    def store_estimate(self) -> SampleEstimate:
        """Aggregate silent-store estimate over every sampled store,
        with a cluster-coverage CI (clusters = sampled store addresses)."""
        pooled = (self.sampled_silent / self.sampled_stores
                  if self.sampled_stores else 0.0)
        low, high = cluster_coverage_interval(
            self.sampled_silent, self.sampled_stores,
            kish_effective_size(self._store_counts.values()),
            self.total_stores, self.sample_rate)
        return SampleEstimate.from_interval(
            self.sampled_silent, self.sampled_stores, pooled, low, high)

    @property
    def load_coverage(self) -> float:
        """Fraction of dynamic loads the sampled addresses represent
        (Horvitz-Thompson scale-up, clamped to 1)."""
        if not self.total_loads:
            return 0.0
        return min(1.0, self.sample_rate * self.sampled_loads
                   / self.total_loads)

    @property
    def store_coverage(self) -> float:
        """Fraction of dynamic stores the sampled addresses represent."""
        if not self.total_stores:
            return 0.0
        return min(1.0, self.sample_rate * self.sampled_stores
                   / self.total_stores)

    @property
    def redundant_load_fraction(self) -> float:
        return self.load_estimate.fraction

    @property
    def silent_store_fraction(self) -> float:
        return self.store_estimate.fraction

    @property
    def redundant_loads(self) -> int:
        """Estimated redundant-load count, scaled to the exact total."""
        return round(self.total_loads * self.redundant_load_fraction)

    @property
    def silent_stores(self) -> int:
        """Estimated silent-store count, scaled to the exact total."""
        return round(self.total_stores * self.silent_store_fraction)

    @property
    def tracked_addresses(self) -> int:
        return len(self._last_loaded)

    def load_sites(self) -> List[SampledLoadSiteStats]:
        """All load sites, most dynamic executions first."""
        return sorted(self._loads.values(), key=lambda s: -s.dynamic)

    def store_sites(self) -> List[SampledStoreSiteStats]:
        """All store sites, most dynamic executions first."""
        return sorted(self._stores.values(), key=lambda s: -s.dynamic)

    def hottest_redundant_loads(self, count: int = 10
                                ) -> List[SampledLoadSiteStats]:
        """Sites contributing the most (estimated) redundant loads."""
        return sorted(self._loads.values(), key=lambda s: -s.redundant)[:count]

    def provenance(self) -> Dict[str, object]:
        """Sampling provenance for the run manifest (schema v5)."""
        load = self.load_estimate
        store = self.store_estimate
        return {
            "sample_rate": self.sample_rate,
            "seed": self.seed,
            "estimator": "cluster-coverage",
            "sampled_loads": self.sampled_loads,
            "sampled_stores": self.sampled_stores,
            "tracked_addresses": self.tracked_addresses,
            "tracked_address_budget": self.max_tracked_addresses,
            "tracked_addresses_capped": self.tracked_addresses_capped,
            "load_coverage": self.load_coverage,
            "store_coverage": self.store_coverage,
            "load_ci_width": load.ci_width,
            "store_ci_width": store.ci_width,
        }

    def summary(self) -> Dict[str, float]:
        """Aggregate estimates and CIs; a superset of the exact summary.

        Same keys as :meth:`RedundantLoadProfiler.summary` (with
        ``redundant_loads`` / ``silent_stores`` as scaled estimates) plus
        the interval bounds and sampling provenance, so stored payloads
        and ``compare`` rows self-describe as sampled.
        """
        load = self.load_estimate
        store = self.store_estimate
        return {
            "total_instructions": self.total_instructions,
            "total_loads": self.total_loads,
            "redundant_loads": self.redundant_loads,
            "redundant_load_fraction": load.fraction,
            "redundant_load_fraction_ci_low": load.ci_low,
            "redundant_load_fraction_ci_high": load.ci_high,
            "redundant_load_fraction_ci_width": load.ci_width,
            "total_stores": self.total_stores,
            "silent_stores": self.silent_stores,
            "silent_store_fraction": store.fraction,
            "silent_store_fraction_ci_low": store.ci_low,
            "silent_store_fraction_ci_high": store.ci_high,
            "silent_store_fraction_ci_width": store.ci_width,
            "sample_rate": self.sample_rate,
            "sample_seed": self.seed,
            "sampled_loads": self.sampled_loads,
            "sampled_stores": self.sampled_stores,
            "tracked_addresses_capped": self.tracked_addresses_capped,
        }

    def __repr__(self) -> str:
        load = self.load_estimate
        return (
            f"SampledRedundantLoadProfiler(1/{self.sample_rate}: "
            f"~{load.fraction:.1%} redundant "
            f"[{load.ci_low:.1%}, {load.ci_high:.1%}] "
            f"from {self.sampled_loads} sampled loads)"
        )
