"""Redundant-load and silent-store profiling.

Definitions (following the paper's §2):

* A dynamic **load is redundant** when it fetches the *same value* that
  the most recent previous load from the *same address* returned — i.e.
  the location's data was already brought into the core and has not
  changed since.  The first load of an address is never redundant.  (This
  per-location definition is the one under which the paper's "78 % of all
  loads fetch redundant data" is meaningful: a loop re-walking an
  unchanged array is fetching entirely redundant data even though each
  static load visits many addresses.)
* A dynamic **store is silent** when the value it writes equals the value
  already in memory.  Silent stores are exactly what the DTT same-value
  filter suppresses.

Redundancy is attributed to static sites as well, so the report can show
which loops carry the redundancy; site attribution uses the same
per-location definition.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.machine.events import MachineObserver

Number = Union[int, float]

#: sentinel distinguishing "never loaded" from any real value
_NEVER = object()


class LoadSiteStats:
    """Counters for one static load site."""

    __slots__ = ("pc", "dynamic", "redundant")

    def __init__(self, pc: int):
        self.pc = pc
        self.dynamic = 0
        self.redundant = 0

    @property
    def redundant_fraction(self) -> float:
        return self.redundant / self.dynamic if self.dynamic else 0.0

    def __repr__(self) -> str:
        return (
            f"LoadSiteStats(pc={self.pc}, {self.redundant}/{self.dynamic} "
            f"redundant)"
        )


class StoreSiteStats:
    """Counters for one static store site."""

    __slots__ = ("pc", "dynamic", "silent", "triggering")

    def __init__(self, pc: int, triggering: bool):
        self.pc = pc
        self.dynamic = 0
        self.silent = 0
        self.triggering = triggering

    @property
    def silent_fraction(self) -> float:
        return self.silent / self.dynamic if self.dynamic else 0.0

    def __repr__(self) -> str:
        return (
            f"StoreSiteStats(pc={self.pc}, {self.silent}/{self.dynamic} "
            f"silent{', triggering' if self.triggering else ''})"
        )


class RedundantLoadProfiler(MachineObserver):
    """Observer computing redundant-load / silent-store statistics."""

    def __init__(self) -> None:
        self._loads: Dict[int, LoadSiteStats] = {}
        self._stores: Dict[int, StoreSiteStats] = {}
        # per-location last-loaded value (the redundancy definition)
        self._last_loaded: Dict[int, Number] = {}
        self.total_loads = 0
        self.redundant_loads = 0
        self.total_stores = 0
        self.silent_stores = 0
        self.total_instructions = 0

    # -- observer hooks ---------------------------------------------------------

    def on_instruction(self, ctx, pc, instruction) -> None:
        self.total_instructions += 1

    def on_load(self, ctx, pc, address, value) -> None:
        site = self._loads.get(pc)
        if site is None:
            site = self._loads[pc] = LoadSiteStats(pc)
        site.dynamic += 1
        self.total_loads += 1
        last = self._last_loaded.get(address, _NEVER)
        if last == value and last is not _NEVER:
            site.redundant += 1
            self.redundant_loads += 1
        self._last_loaded[address] = value

    def on_store(self, ctx, pc, address, old_value, new_value, triggering) -> None:
        site = self._stores.get(pc)
        if site is None:
            site = self._stores[pc] = StoreSiteStats(pc, triggering)
        site.dynamic += 1
        self.total_stores += 1
        if old_value == new_value:
            site.silent += 1
            self.silent_stores += 1

    # -- reporting ------------------------------------------------------------------

    @property
    def redundant_load_fraction(self) -> float:
        return self.redundant_loads / self.total_loads if self.total_loads else 0.0

    @property
    def silent_store_fraction(self) -> float:
        return self.silent_stores / self.total_stores if self.total_stores else 0.0

    def load_sites(self) -> List[LoadSiteStats]:
        """All load sites, most dynamic executions first."""
        return sorted(self._loads.values(), key=lambda s: -s.dynamic)

    def store_sites(self) -> List[StoreSiteStats]:
        """All store sites, most dynamic executions first."""
        return sorted(self._stores.values(), key=lambda s: -s.dynamic)

    def hottest_redundant_loads(self, count: int = 10) -> List[LoadSiteStats]:
        """Sites contributing the most redundant dynamic loads."""
        return sorted(self._loads.values(), key=lambda s: -s.redundant)[:count]

    def summary(self) -> Dict[str, float]:
        """Aggregate counters and fractions for reports."""
        return {
            "total_instructions": self.total_instructions,
            "total_loads": self.total_loads,
            "redundant_loads": self.redundant_loads,
            "redundant_load_fraction": self.redundant_load_fraction,
            "total_stores": self.total_stores,
            "silent_stores": self.silent_stores,
            "silent_store_fraction": self.silent_store_fraction,
        }

    def __repr__(self) -> str:
        return (
            f"RedundantLoadProfiler({self.redundant_loads}/{self.total_loads} "
            f"loads redundant = {self.redundant_load_fraction:.1%})"
        )
