"""Forward-slice analysis: how much computation is redundant.

The paper's second motivating measurement: redundant *loads* seed
redundant *computation* — every instruction whose inputs all derive from
redundant values recomputes a result it already produced.  We estimate
this with dynamic taint propagation:

* a redundant load (per :mod:`repro.profiling.redundancy`'s definition)
  taints its destination register;
* an ALU instruction's destination is tainted iff it has at least one
  register source and *all* register sources are tainted (constants are
  invariant by definition and neither create nor destroy taint);
* a store propagates the stored register's taint to the memory word, and
  a non-redundant load of a tainted word is still tainted (the value was
  produced by redundant computation);
* ``li``/``la`` results are untainted — taint originates *only* at
  redundant loads, so the metric is exactly "dynamic instructions in the
  forward slice of redundant loads".

A dynamic instruction counts as **redundant computation** when: it is a
redundant load; or it writes a tainted destination; or it is a store of a
tainted value; or it is a conditional branch all of whose register sources
are tainted.  This is an operationalization of the paper's measurement
(their exact slicing tool is not published); E2 is shape-only.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.isa.instructions import OPCODES, OpClass, operand_roles
from repro.machine.events import MachineObserver
from repro.isa.registers import NUM_REGISTERS

#: sentinel distinguishing "never loaded" from any real value
_NEVER = object()


class RedundancyTaintAnalyzer(MachineObserver):
    """Observer measuring the redundant-computation fraction."""

    def __init__(self) -> None:
        # per-context register taint, created lazily by context id
        self._reg_taint: Dict[int, List[bool]] = {}
        self._mem_taint: Dict[int, bool] = {}
        # per-location last-loaded value (same redundancy definition as
        # the profiler, duplicated so the analyzer is self-contained)
        self._last: Dict[int, object] = {}
        # roles cache: op -> (dest_slot, source_slots)
        self._roles: Dict[str, Tuple] = {
            op: operand_roles(op) for op in OPCODES
        }
        self.total_instructions = 0
        self.redundant_instructions = 0
        #: per-class breakdown of redundant dynamic instructions
        self.redundant_by_class: Dict[OpClass, int] = {c: 0 for c in OpClass}
        # communication from memory hooks to on_instruction within one step
        self._pending_load_taint = False
        self._pending_store_address = None

    def _taint_of(self, ctx) -> List[bool]:
        taint = self._reg_taint.get(ctx.context_id)
        if taint is None:
            taint = self._reg_taint[ctx.context_id] = [False] * NUM_REGISTERS
        return taint

    # -- hooks -----------------------------------------------------------------

    def on_load(self, ctx, pc, address, value) -> None:
        last = self._last.get(address, _NEVER)
        redundant = last is not _NEVER and last == value
        self._last[address] = value
        # the destination register is tainted either because the load was
        # itself redundant or because the word was written by redundant
        # computation; on_instruction applies it to the register file
        self._pending_load_taint = redundant or self._mem_taint.get(address, False)

    def on_instruction(self, ctx, pc, instruction) -> None:
        self.total_instructions += 1
        op = instruction.op
        op_class = instruction.op_class
        taint = self._taint_of(ctx)
        dest, sources = self._roles[op]
        redundant = False
        if op_class is OpClass.LOAD:
            value_taint = self._pending_load_taint
            self._pending_load_taint = False
            taint[instruction.a] = value_taint
            redundant = value_taint
        elif op_class in (OpClass.STORE, OpClass.TSTORE):
            stored_taint = taint[instruction.a]
            address = self._pending_store_address  # recorded by on_store
            if address is not None:
                self._mem_taint[address] = stored_taint
            redundant = stored_taint
            self._pending_store_address = None
        elif dest is not None:
            if sources:
                result_taint = all(taint[getattr(instruction, s)] for s in sources)
            else:
                result_taint = False  # li / constants
            taint[getattr(instruction, dest)] = result_taint
            redundant = result_taint
        elif op_class is OpClass.BRANCH:
            redundant = bool(sources) and all(
                taint[getattr(instruction, s)] for s in sources
            )
        if redundant:
            self.redundant_instructions += 1
            self.redundant_by_class[op_class] += 1

    def on_store(self, ctx, pc, address, old_value, new_value, triggering) -> None:
        self._pending_store_address = address

    # -- reporting ----------------------------------------------------------------

    @property
    def redundant_fraction(self) -> float:
        if not self.total_instructions:
            return 0.0
        return self.redundant_instructions / self.total_instructions

    def summary(self) -> Dict[str, float]:
        """Aggregate counters and the redundant-computation fraction."""
        return {
            "total_instructions": self.total_instructions,
            "redundant_instructions": self.redundant_instructions,
            "redundant_computation_fraction": self.redundant_fraction,
        }

    def __repr__(self) -> str:
        return (
            f"RedundancyTaintAnalyzer({self.redundant_instructions}/"
            f"{self.total_instructions} = {self.redundant_fraction:.1%})"
        )
