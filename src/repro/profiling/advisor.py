"""Conversion advisor: where should data-triggered threads go?

The paper's conversions were found by profiling: look for stores that are
overwhelmingly *silent* (the same-value filter would suppress them) and
for the recomputation regions fed by *redundant* loads downstream of that
data.  This module mechanizes that methodology: given a profiled baseline
run, it ranks

* **trigger candidates** — static stores whose dynamic executions are
  mostly silent (attaching a thread there would rarely fire), and
* **region candidates** — functions whose dynamic loads are mostly
  redundant (their work is what a support thread could skip),

and combines them into an overall conversion report.  The scores are the
quantities the DTT benefit depends on: a region's *skippable work* is its
dynamic instruction share times its redundancy, gated by how silent its
upstream stores are.

This is an analysis aid, not an automatic transformer: DTIR has no
general alias analysis, so the advisor reports *where to look*, exactly
as the paper's authors used their profiler.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa.program import Program
from repro.machine.events import MachineObserver
from repro.machine.machine import Machine, run_to_completion
from repro.profiling.redundancy import (RedundantLoadProfiler,
                                        SampledRedundantLoadProfiler)


class RegionProfile:
    """Aggregated per-function profile."""

    __slots__ = ("name", "dynamic_instructions", "dynamic_loads",
                 "redundant_loads", "dynamic_stores", "silent_stores")

    def __init__(self, name: str):
        self.name = name
        self.dynamic_instructions = 0
        self.dynamic_loads = 0
        self.redundant_loads = 0
        self.dynamic_stores = 0
        self.silent_stores = 0

    @property
    def redundant_load_fraction(self) -> float:
        if not self.dynamic_loads:
            return 0.0
        return self.redundant_loads / self.dynamic_loads

    @property
    def silent_store_fraction(self) -> float:
        if not self.dynamic_stores:
            return 0.0
        return self.silent_stores / self.dynamic_stores

    def __repr__(self) -> str:
        return (
            f"RegionProfile({self.name!r}, insts={self.dynamic_instructions}, "
            f"loads {self.redundant_load_fraction:.0%} redundant)"
        )


class TriggerCandidate:
    """One static store ranked as a potential triggering store."""

    __slots__ = ("pc", "function", "dynamic", "silent", "score",
                 "score_ci_low", "score_ci_high")

    def __init__(self, pc: int, function: str, dynamic: int, silent: int,
                 score: float, score_ci_low: Optional[float] = None,
                 score_ci_high: Optional[float] = None):
        self.pc = pc
        self.function = function
        self.dynamic = dynamic
        self.silent = silent
        self.score = score
        #: CI bounds on the score when the profile was sampled; the
        #: advisor then ranks by the *lower* bound, so a site whose
        #: estimate is mostly uncertainty cannot outrank a site the
        #: sample actually measured
        self.score_ci_low = score_ci_low
        self.score_ci_high = score_ci_high

    @property
    def silent_fraction(self) -> float:
        return self.silent / self.dynamic if self.dynamic else 0.0

    @property
    def rank_key(self) -> float:
        """What the advisor sorts by: CI lower bound if sampled."""
        if self.score_ci_low is not None:
            return self.score_ci_low
        return self.score

    def __repr__(self) -> str:
        ci = ""
        if self.score_ci_low is not None:
            ci = f" [{self.score_ci_low:.3f}, {self.score_ci_high:.3f}]"
        return (
            f"TriggerCandidate(pc={self.pc}, {self.silent_fraction:.0%} "
            f"silent, score={self.score:.3f}{ci})"
        )


class RegionCandidate:
    """One function ranked as a potential support-thread body."""

    __slots__ = ("name", "instruction_share", "redundancy", "score")

    def __init__(self, name: str, instruction_share: float,
                 redundancy: float, score: float):
        self.name = name
        self.instruction_share = instruction_share
        self.redundancy = redundancy
        self.score = score

    def __repr__(self) -> str:
        return (
            f"RegionCandidate({self.name!r}, share="
            f"{self.instruction_share:.0%}, redundancy={self.redundancy:.0%})"
        )


class _RegionObserver(MachineObserver):
    """Attributes instructions/loads/stores to the enclosing function."""

    def __init__(self, program: Program, load_state: Dict):
        self._function_of: Dict[int, str] = {}
        for function in program.functions:
            for pc in range(function.start, function.end):
                self._function_of[pc] = function.name
        self.regions: Dict[str, RegionProfile] = {}
        self._last_loaded = load_state  # shared per-location state

    def _region(self, pc: int) -> RegionProfile:
        name = self._function_of.get(pc, "<toplevel>")
        region = self.regions.get(name)
        if region is None:
            region = self.regions[name] = RegionProfile(name)
        return region

    def on_instruction(self, ctx, pc, instruction) -> None:
        self._region(pc).dynamic_instructions += 1

    def on_load(self, ctx, pc, address, value) -> None:
        region = self._region(pc)
        region.dynamic_loads += 1
        marker = self._last_loaded.get(address, _NEVER)
        if marker is not _NEVER and marker == value:
            region.redundant_loads += 1
        # per-location last-loaded value; this observer keeps its own copy
        # of the state (same definition as RedundantLoadProfiler), so the
        # two observers stay independent yet agree exactly
        self._last_loaded[address] = value

    def on_store(self, ctx, pc, address, old, new, triggering) -> None:
        region = self._region(pc)
        region.dynamic_stores += 1
        if old == new:
            region.silent_stores += 1


_NEVER = object()


class ConversionReport:
    """Ranked advice for one program."""

    def __init__(self, triggers: List[TriggerCandidate],
                 regions: List[RegionCandidate],
                 region_profiles: Dict[str, RegionProfile]):
        self.triggers = triggers
        self.regions = regions
        self.region_profiles = region_profiles

    def top_triggers(self, count: int = 5) -> List[TriggerCandidate]:
        """The highest-scoring trigger candidates."""
        return self.triggers[:count]

    def top_regions(self, count: int = 5) -> List[RegionCandidate]:
        """The highest-scoring region candidates."""
        return self.regions[:count]

    def render(self) -> str:
        """Human-readable advice block."""
        lines = ["conversion advice", "-" * 40,
                 "trigger candidates (silent stores worth watching):"]
        for cand in self.top_triggers():
            lines.append(
                f"  pc {cand.pc:5d} in {cand.function:<16s} "
                f"{cand.silent:>7,}/{cand.dynamic:>7,} silent "
                f"({cand.silent_fraction:.0%})  score {cand.score:.3f}"
            )
        lines.append("region candidates (redundant work worth skipping):")
        for cand in self.top_regions():
            lines.append(
                f"  {cand.name:<22s} {cand.instruction_share:6.1%} of "
                f"instructions, {cand.redundancy:6.1%} redundant  "
                f"score {cand.score:.3f}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ConversionReport({len(self.triggers)} trigger candidates, "
            f"{len(self.regions)} region candidates)"
        )


def advise(
    program: Program,
    min_dynamic_stores: int = 4,
    num_contexts: int = 1,
    max_instructions: int = 20_000_000,
    engine=None,
    sample_rate: Optional[int] = None,
    sample_seed: int = 0,
) -> ConversionReport:
    """Profile ``program`` and rank conversion opportunities.

    ``min_dynamic_stores`` filters one-shot initialization stores out of
    the trigger ranking (a store executed a handful of times is not worth
    a thread even if silent).

    ``sample_rate`` switches to the bounded-memory
    :class:`~repro.profiling.redundancy.SampledRedundantLoadProfiler`
    (a 1-in-``sample_rate`` address sample).  Trigger candidates then
    carry confidence bounds on their scores and are ordered by the CI
    *lower* bound, so sampling noise cannot promote a weakly-observed
    site over a well-observed one.
    """
    machine = Machine(program, num_contexts=num_contexts,
                      max_instructions=max_instructions)
    if engine is not None:
        machine.attach_engine(engine)
    if sample_rate is not None:
        loads = SampledRedundantLoadProfiler(sample_rate, seed=sample_seed)
    else:
        loads = RedundantLoadProfiler()
    regions = _RegionObserver(program, load_state={})
    machine.add_observer(loads)
    machine.add_observer(regions)
    run_to_completion(machine)

    total_instructions = max(
        sum(r.dynamic_instructions for r in regions.regions.values()), 1
    )

    # trigger candidates: silent, frequently-executed static stores
    triggers: List[TriggerCandidate] = []
    for site in loads.store_sites():
        if site.dynamic < min_dynamic_stores:
            continue
        function = program.function_at(site.pc)
        # score: how much dynamic store traffic the value filter would
        # suppress, weighted by how silent the site is
        score = site.silent_fraction * (site.silent / loads.total_stores
                                        if loads.total_stores else 0.0)
        ci_low = ci_high = None
        estimate = getattr(site, "estimate", None)
        if estimate is not None and loads.total_stores:
            # both factors are the site's silent fraction (times the
            # exact dynamic/total weight), so the score bounds are the
            # squared fraction bounds under the same weight
            weight = site.dynamic / loads.total_stores
            ci_low = estimate.ci_low ** 2 * weight
            ci_high = estimate.ci_high ** 2 * weight
        triggers.append(TriggerCandidate(
            site.pc, function.name if function else "<toplevel>",
            site.dynamic, site.silent, score, ci_low, ci_high,
        ))
    triggers.sort(key=lambda c: (-c.rank_key, c.pc))

    # region candidates: instruction-heavy, redundancy-heavy functions
    region_candidates: List[RegionCandidate] = []
    for region in regions.regions.values():
        share = region.dynamic_instructions / total_instructions
        redundancy = region.redundant_load_fraction
        region_candidates.append(RegionCandidate(
            region.name, share, redundancy, share * redundancy,
        ))
    region_candidates.sort(key=lambda c: -c.score)

    return ConversionReport(triggers, region_candidates, regions.regions)
