"""Convenience entry point: profile one program in one call.

``profile_program`` runs a finalized program functionally with both
analyzers attached and returns a :class:`RedundancyReport` — the unit a
benchmark-level study (E1/E2) aggregates across the suite.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.engine import DttEngine
from repro.isa.program import Program
from repro.machine.machine import Machine, run_to_completion
from repro.profiling.redundancy import RedundantLoadProfiler
from repro.profiling.slices import RedundancyTaintAnalyzer


class RedundancyReport:
    """Both analyses of one run, plus the run's output for checking."""

    __slots__ = ("name", "loads", "slices", "output", "instructions")

    def __init__(self, name, loads, slices, output, instructions):
        self.name = name
        self.loads = loads
        self.slices = slices
        self.output = output
        self.instructions = instructions

    @property
    def redundant_load_fraction(self) -> float:
        return self.loads.redundant_load_fraction

    @property
    def silent_store_fraction(self) -> float:
        return self.loads.silent_store_fraction

    @property
    def redundant_computation_fraction(self) -> float:
        return self.slices.redundant_fraction

    def summary(self) -> Dict[str, float]:
        """Merged load + slice summaries, tagged with the run's name."""
        merged = dict(self.loads.summary())
        merged.update(self.slices.summary())
        merged["name"] = self.name
        return merged

    def __repr__(self) -> str:
        return (
            f"RedundancyReport({self.name!r}, "
            f"loads={self.redundant_load_fraction:.1%}, "
            f"computation={self.redundant_computation_fraction:.1%})"
        )


def profile_program(
    program: Program,
    name: str = "program",
    engine: Optional[DttEngine] = None,
    num_contexts: int = 1,
    max_instructions: int = 20_000_000,
) -> RedundancyReport:
    """Run ``program`` functionally under both redundancy analyzers.

    The paper's motivation study profiles *unmodified* (baseline) builds,
    so ``engine`` is normally ``None``; passing a synchronous engine lets
    you profile a DTT build's residual redundancy instead.
    """
    machine = Machine(program, num_contexts=num_contexts,
                      max_instructions=max_instructions)
    if engine is not None:
        machine.attach_engine(engine)
    loads = RedundantLoadProfiler()
    slices = RedundancyTaintAnalyzer()
    machine.add_observer(loads)
    machine.add_observer(slices)
    output = run_to_completion(machine)
    return RedundancyReport(
        name=name,
        loads=loads,
        slices=slices,
        output=output,
        instructions=machine.instructions_executed,
    )
