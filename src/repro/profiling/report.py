"""Convenience entry point: profile one program in one call.

``profile_program`` runs a finalized program functionally with both
analyzers attached and returns a :class:`RedundancyReport` — the unit a
benchmark-level study (E1/E2) aggregates across the suite.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.engine import DttEngine
from repro.isa.program import Program
from repro.machine.machine import Machine, run_to_completion
from repro.profiling.redundancy import (RedundantLoadProfiler,
                                        SampledRedundantLoadProfiler)
from repro.profiling.slices import RedundancyTaintAnalyzer


class RedundancyReport:
    """Both analyses of one run, plus the run's output for checking."""

    __slots__ = ("name", "loads", "slices", "output", "instructions")

    def __init__(self, name, loads, slices, output, instructions):
        self.name = name
        self.loads = loads
        self.slices = slices
        self.output = output
        self.instructions = instructions

    @property
    def redundant_load_fraction(self) -> float:
        return self.loads.redundant_load_fraction

    @property
    def silent_store_fraction(self) -> float:
        return self.loads.silent_store_fraction

    @property
    def redundant_computation_fraction(self) -> float:
        return self.slices.redundant_fraction

    def summary(self) -> Dict[str, float]:
        """Merged load + slice summaries, tagged with the run's name."""
        merged = dict(self.loads.summary())
        merged.update(self.slices.summary())
        merged["name"] = self.name
        return merged

    def __repr__(self) -> str:
        return (
            f"RedundancyReport({self.name!r}, "
            f"loads={self.redundant_load_fraction:.1%}, "
            f"computation={self.redundant_computation_fraction:.1%})"
        )


def profile_program(
    program: Program,
    name: str = "program",
    engine: Optional[DttEngine] = None,
    num_contexts: int = 1,
    max_instructions: int = 20_000_000,
    sample_rate: Optional[int] = None,
    sample_seed: int = 0,
) -> RedundancyReport:
    """Run ``program`` functionally under both redundancy analyzers.

    The paper's motivation study profiles *unmodified* (baseline) builds,
    so ``engine`` is normally ``None``; passing a synchronous engine lets
    you profile a DTT build's residual redundancy instead.

    ``sample_rate`` (a denominator: 64 means 1/64 of addresses) switches
    the load analysis to the bounded-memory
    :class:`~repro.profiling.redundancy.SampledRedundantLoadProfiler`,
    whose site stats are estimates with confidence intervals instead of
    exact counts.  The forward-slice taint analyzer needs every load to
    propagate taint, so sampled profiles skip it and report a
    redundant-computation fraction of 0 with ``slice_sampled_out`` set —
    E1-style load/store numbers are the ones sampling scales.
    """
    machine = Machine(program, num_contexts=num_contexts,
                      max_instructions=max_instructions)
    if engine is not None:
        machine.attach_engine(engine)
    if sample_rate is not None:
        loads = SampledRedundantLoadProfiler(sample_rate, seed=sample_seed)
        slices = _SampledOutSlices()
        machine.add_observer(loads)
    else:
        loads = RedundantLoadProfiler()
        slices = RedundancyTaintAnalyzer()
        machine.add_observer(loads)
        machine.add_observer(slices)
    output = run_to_completion(machine)
    return RedundancyReport(
        name=name,
        loads=loads,
        slices=slices,
        output=output,
        instructions=machine.instructions_executed,
    )


class _SampledOutSlices:
    """Stand-in slice analysis for sampled profiles.

    Taint propagation is whole-stream by construction (every load either
    carries or clears taint), so a sampled profile cannot estimate it;
    this reports zero with an explicit marker rather than a silently
    wrong number.
    """

    redundant_fraction = 0.0
    total_instructions = 0
    redundant_instructions = 0

    def summary(self) -> Dict[str, float]:
        return {
            "redundant_computation_fraction": 0.0,
            "slice_sampled_out": 1,
        }
