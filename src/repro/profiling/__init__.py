"""Redundancy profiling — the paper's §2 motivation study.

Two analyses, both implemented as machine observers:

* :class:`~repro.profiling.redundancy.RedundantLoadProfiler` — the paper's
  headline measurement: the fraction of dynamic loads that fetch *redundant
  data* (same value from the same address as that static load's previous
  execution; the paper reports 78 % on average across the C SPEC
  benchmarks).  Also measures silent stores, which is what the DTT
  same-value filter exploits.

* :class:`~repro.profiling.slices.RedundancyTaintAnalyzer` — propagates
  redundancy forward through registers and memory to estimate the fraction
  of *all* dynamic instructions that constitute redundant computation
  (the computation DTT can skip).
"""

from repro.profiling.advisor import ConversionReport, advise
from repro.profiling.redundancy import (
    LoadSiteStats,
    RedundantLoadProfiler,
    SampledLoadSiteStats,
    SampledRedundantLoadProfiler,
    SampledStoreSiteStats,
    StoreSiteStats,
)
from repro.profiling.slices import RedundancyTaintAnalyzer
from repro.profiling.report import RedundancyReport, profile_program

__all__ = [
    "ConversionReport",
    "advise",
    "LoadSiteStats",
    "RedundantLoadProfiler",
    "SampledLoadSiteStats",
    "SampledRedundantLoadProfiler",
    "SampledStoreSiteStats",
    "StoreSiteStats",
    "RedundancyTaintAnalyzer",
    "RedundancyReport",
    "profile_program",
]
