"""Timing-model parameters and named machine configurations.

The defaults approximate the paper's simulated machine (an SMTSIM-class
out-of-order SMT processor): 4-wide issue, 2 hardware contexts per core,
short integer latencies, long divide/sqrt, a two-level cache hierarchy,
and a gshare branch predictor.  Experiment E7 prints this table.

Named configurations used by the evaluation:

* ``smt2`` — one core, two SMT contexts (the paper's main configuration:
  support threads run on the spare context, sharing the L1).
* ``cmp2`` — two single-context cores (support threads run on the idle
  core: concurrency without L1 sharing, plus coherence traffic).
* ``smt4`` — one core, four SMT contexts (headroom sensitivity).
* ``serial`` — one core, one context (no spare context: support threads
  run inline at the consume point; skip benefit only).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cache.hierarchy import HierarchyParams
from repro.isa.instructions import OpClass


class CoreParams:
    """Per-core issue and functional-unit parameters."""

    __slots__ = (
        "issue_width",
        "latency",
        "mispredict_penalty",
        "load_hide_latency",
        "spawn_latency",
    )

    def __init__(
        self,
        issue_width: int = 4,
        mispredict_penalty: int = 12,
        load_hide_latency: int = 2,
        spawn_latency: int = 4,
        latency: Optional[Dict[OpClass, int]] = None,
    ):
        self.issue_width = issue_width
        self.mispredict_penalty = mispredict_penalty
        #: loads at or below this latency are treated as fully pipelined
        #: (an L1 hit does not stall the context)
        self.load_hide_latency = load_hide_latency
        #: cycles to fire up a support thread on a spare context
        self.spawn_latency = spawn_latency
        self.latency = {
            OpClass.IALU: 1,
            OpClass.IMUL: 3,
            OpClass.IDIV: 12,
            OpClass.FPADD: 2,
            OpClass.FPMUL: 4,
            OpClass.FPDIV: 16,
            OpClass.STORE: 1,
            OpClass.TSTORE: 1,
            OpClass.BRANCH: 1,
            OpClass.JUMP: 1,
            OpClass.SYS: 1,
            OpClass.LOAD: 1,  # overridden by the cache hierarchy
        }
        if latency:
            self.latency.update(latency)

    def __repr__(self) -> str:
        return (
            f"CoreParams(width={self.issue_width}, "
            f"mispredict={self.mispredict_penalty}, "
            f"spawn={self.spawn_latency})"
        )


class SystemConfig:
    """Whole-machine configuration: cores, contexts, caches, predictor."""

    __slots__ = (
        "name",
        "num_cores",
        "contexts_per_core",
        "core_params",
        "hierarchy_params",
        "predictor",
        "max_cycles",
        "model_icache",
    )

    def __init__(
        self,
        name: str = "custom",
        num_cores: int = 1,
        contexts_per_core: int = 2,
        core_params: Optional[CoreParams] = None,
        hierarchy_params: Optional[HierarchyParams] = None,
        predictor: str = "gshare",
        max_cycles: int = 200_000_000,
        model_icache: bool = False,
    ):
        if num_cores < 1 or contexts_per_core < 1:
            raise ValueError("need at least one core and one context per core")
        self.name = name
        self.num_cores = num_cores
        self.contexts_per_core = contexts_per_core
        self.core_params = core_params or CoreParams()
        self.hierarchy_params = hierarchy_params or HierarchyParams()
        self.predictor = predictor
        self.max_cycles = max_cycles
        #: model instruction fetch through per-core L1 I-caches; off by
        #: default (ideal fetch affects baseline and DTT builds alike)
        self.model_icache = model_icache

    @property
    def total_contexts(self) -> int:
        return self.num_cores * self.contexts_per_core

    def parameter_table(self) -> Dict[str, str]:
        """The E7 'simulated machine configuration' table rows."""
        core = self.core_params
        hier = self.hierarchy_params
        return {
            "configuration": self.name,
            "cores": str(self.num_cores),
            "SMT contexts / core": str(self.contexts_per_core),
            "issue width": str(core.issue_width),
            "branch predictor": self.predictor,
            "mispredict penalty": f"{core.mispredict_penalty} cycles",
            "int mul / div": (
                f"{core.latency[OpClass.IMUL]} / {core.latency[OpClass.IDIV]} cycles"
            ),
            "fp add / mul / div": (
                f"{core.latency[OpClass.FPADD]} / {core.latency[OpClass.FPMUL]} / "
                f"{core.latency[OpClass.FPDIV]} cycles"
            ),
            "L1D": (
                f"{hier.l1_lines} lines x {hier.l1_associativity}-way, "
                f"{hier.line_words}-word lines, {hier.l1_latency}-cycle hit"
            ),
            "L2 (shared)": (
                f"{hier.l2_lines} lines x {hier.l2_associativity}-way, "
                f"{hier.l2_latency}-cycle hit"
            ),
            "memory latency": f"{hier.memory_latency} cycles",
            "thread spawn latency": f"{core.spawn_latency} cycles",
        }

    def __repr__(self) -> str:
        return (
            f"SystemConfig({self.name!r}, cores={self.num_cores}, "
            f"contexts/core={self.contexts_per_core})"
        )


_NAMED = {
    "smt2": dict(num_cores=1, contexts_per_core=2),
    "smt4": dict(num_cores=1, contexts_per_core=4),
    "cmp2": dict(num_cores=2, contexts_per_core=1),
    "serial": dict(num_cores=1, contexts_per_core=1),
}


def named_config(name: str, **overrides) -> SystemConfig:
    """Build one of the evaluation's named machine configurations."""
    try:
        base = dict(_NAMED[name])
    except KeyError:
        raise ValueError(
            f"unknown configuration {name!r}; choose from {sorted(_NAMED)}"
        ) from None
    base.update(overrides)
    return SystemConfig(name=name, **base)
