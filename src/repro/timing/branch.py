"""Branch predictors: bimodal and gshare.

Both use 2-bit saturating counters.  The predictor charges nothing itself;
the core model adds the misprediction penalty when ``predict`` disagrees
with the architectural outcome.
"""

from __future__ import annotations

from typing import List


class BranchPredictor:
    """Interface plus shared accounting."""

    def __init__(self) -> None:
        self.lookups = 0
        self.mispredicts = 0

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        """Train on the architectural outcome of the branch at ``pc``."""
        raise NotImplementedError

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """One-call wrapper: returns True if the prediction was correct."""
        self.lookups += 1
        correct = self.predict(pc) == taken
        if not correct:
            self.mispredicts += 1
        self.update(pc, taken)
        return correct

    @property
    def accuracy(self) -> float:
        return 1.0 - self.mispredicts / self.lookups if self.lookups else 1.0


class BimodalPredictor(BranchPredictor):
    """Per-PC 2-bit saturating counters."""

    def __init__(self, table_bits: int = 12):
        super().__init__()
        self.table_size = 1 << table_bits
        self._mask = self.table_size - 1
        # counters start weakly taken (2): loops predict taken early
        self._counters: List[int] = [2] * self.table_size

    def predict(self, pc: int) -> bool:
        return self._counters[pc & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = pc & self._mask
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1


class GsharePredictor(BranchPredictor):
    """Global-history-XOR-PC indexed 2-bit counters."""

    def __init__(self, table_bits: int = 12, history_bits: int = 12):
        super().__init__()
        self.table_size = 1 << table_bits
        self._mask = self.table_size - 1
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._counters: List[int] = [2] * self.table_size

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) & (
            self._history_mask
        )


_PREDICTORS = {"bimodal": BimodalPredictor, "gshare": GsharePredictor}


def make_predictor(name: str) -> BranchPredictor:
    """Construct a predictor by name ('bimodal' or 'gshare')."""
    try:
        return _PREDICTORS[name]()
    except KeyError:
        raise ValueError(
            f"unknown predictor {name!r}; choose from {sorted(_PREDICTORS)}"
        ) from None
