"""Cycle-approximate SMT/CMP timing model.

The timing model drives the functional machine one instruction at a time
and charges cycles around it: shared per-core issue bandwidth across SMT
contexts, per-class functional-unit latencies, cache-hierarchy latencies
for memory operations, and branch-misprediction penalties from a gshare or
bimodal predictor.  It is the substrate on which the paper's speedups are
measured (simulated cycles, immune to host-interpreter overhead).

It is deliberately *approximate* — an in-order issue model with hidden
L1-hit latency rather than a full out-of-order pipeline — because the
paper's conclusions rest on relative cycle counts between the baseline and
DTT builds of the same kernel, which this model preserves (see DESIGN.md,
"Substitutions").
"""

from repro.timing.params import CoreParams, SystemConfig, named_config
from repro.timing.branch import BimodalPredictor, GsharePredictor, make_predictor
from repro.timing.core import SmtCore
from repro.timing.stats import EnergyModel, TimingResult
from repro.timing.system import TimingSimulator

__all__ = [
    "CoreParams",
    "SystemConfig",
    "named_config",
    "BimodalPredictor",
    "GsharePredictor",
    "make_predictor",
    "SmtCore",
    "EnergyModel",
    "TimingResult",
    "TimingSimulator",
]
