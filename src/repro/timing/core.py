"""Per-core SMT issue model.

Each simulated cycle, a core issues up to ``issue_width`` instructions,
round-robin across its ready contexts (RUNNING and not busy).  Issuing an
instruction executes it functionally via the machine and charges:

* its functional-unit latency (long ops make the context busy);
* for loads, the cache-hierarchy latency — L1 hits are treated as fully
  pipelined (no stall), misses stall the context for the full latency;
* for stores, cache state is updated (fills, coherence invalidations) but
  the context does not stall — an idealized store buffer;
* for conditional branches, the misprediction penalty when the predictor
  disagrees with the architectural outcome.

The round-robin pointer advances every cycle so no context is permanently
favored — the ICOUNT-lite fairness that an SMT fetch policy provides.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cache.hierarchy import CacheHierarchy
from repro.isa.instructions import OpClass
from repro.machine.context import Context, ContextState
from repro.timing.branch import BranchPredictor
from repro.timing.params import CoreParams


class SmtCore:
    """Issue logic for one core's SMT contexts."""

    def __init__(
        self,
        core_id: int,
        contexts: List[Context],
        params: CoreParams,
        hierarchy: CacheHierarchy,
        predictor: BranchPredictor,
        machine,
    ):
        if not contexts:
            raise ValueError("a core needs at least one context")
        self.core_id = core_id
        self.contexts = contexts
        self.params = params
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.machine = machine
        #: charge instruction-fetch latency through the hierarchy's
        #: I-caches (requires hierarchy.enable_icache(); default off)
        self.model_icache = False
        self._rotation = 0
        # accounting
        self.instructions_issued = 0
        self.busy_cycles = 0
        self.class_counts: Dict[OpClass, int] = {cls: 0 for cls in OpClass}

    def cycle(self, now: int) -> int:
        """Simulate one cycle; returns instructions issued.

        Issue slots are handed out one at a time, round-robin across the
        ready contexts (starting from a rotating offset), so concurrent
        contexts genuinely *share* the width within a cycle instead of the
        first context hogging all slots.
        """
        issued = 0
        width = self.params.issue_width
        count = len(self.contexts)
        self._rotation = (self._rotation + 1) % count
        while issued < width:
            progressed = False
            for offset in range(count):
                if issued >= width:
                    break
                ctx = self.contexts[(self._rotation + offset) % count]
                if ctx.state is ContextState.RUNNING and ctx.busy_until <= now:
                    issued += self._issue(ctx, now)
                    progressed = True
            if not progressed:
                break
        if issued:
            self.busy_cycles += 1
        return issued

    def _issue(self, ctx: Context, now: int) -> int:
        pc = ctx.pc
        instruction, address, taken = self.machine.step(ctx)
        op_class = instruction.op_class
        self.class_counts[op_class] += 1
        self.instructions_issued += 1
        latency = self._latency(op_class, pc, address, taken)
        if self.model_icache:
            fetch = self.hierarchy.fetch(self.core_id, pc)
            if fetch > self.params.load_hide_latency and fetch > latency:
                latency = fetch
        if latency > 1:
            ctx.busy_until = now + latency
        return 1

    def _latency(self, op_class: OpClass, pc: int, address, taken) -> int:
        params = self.params
        if op_class is OpClass.LOAD:
            cycles = self.hierarchy.access(self.core_id, address, False)
            if cycles <= params.load_hide_latency:
                return 1
            return cycles
        if op_class is OpClass.STORE or op_class is OpClass.TSTORE:
            self.hierarchy.access(self.core_id, address, True)
            return params.latency[op_class]
        if op_class is OpClass.BRANCH:
            correct = self.predictor.predict_and_update(pc, taken)
            if correct:
                return params.latency[op_class]
            return params.latency[op_class] + params.mispredict_penalty
        return params.latency[op_class]

    def min_ready_time(self, now: int) -> int:
        """Earliest future cycle at which a running context becomes ready.

        Used by the driver to fast-forward over long stalls.  Returns
        ``now`` if something is ready now; a large sentinel if nothing on
        this core is running.
        """
        best = None
        for ctx in self.contexts:
            if ctx.state is ContextState.RUNNING:
                ready_at = ctx.busy_until if ctx.busy_until > now else now
                if best is None or ready_at < best:
                    best = ready_at
        return best if best is not None else -1

    def __repr__(self) -> str:
        return (
            f"SmtCore(id={self.core_id}, contexts={len(self.contexts)}, "
            f"issued={self.instructions_issued})"
        )
