"""The timing simulator: drives cores cycle-by-cycle until the program halts.

Orchestration per cycle:

1. the DTT engine (if any) dispatches queued support threads onto idle
   contexts — newly dispatched contexts pay the spawn latency;
2. every core issues up to its width from its ready contexts;
3. when *nothing* issued, the clock fast-forwards to the earliest cycle at
   which any running context becomes ready (skipping DRAM-stall dead time
   in one step), with a deadlock check when no context can ever run again.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.core.engine import DttEngine
from repro.errors import ExecutionLimitExceeded, MachineError
from repro.isa.program import Program
from repro.machine.context import ContextState
from repro.machine.machine import Machine
from repro.timing.branch import make_predictor
from repro.timing.core import SmtCore
from repro.timing.params import SystemConfig
from repro.timing.stats import EnergyModel, TimingResult


class TimingSimulator:
    """One timed run of one program on one machine configuration."""

    def __init__(
        self,
        program: Program,
        config: Optional[SystemConfig] = None,
        engine: Optional[DttEngine] = None,
        energy_model: Optional[EnergyModel] = None,
        max_instructions: int = 50_000_000,
        metrics=None,
    ):
        self.config = config or SystemConfig()
        #: optional MetricsRegistry; cycle-breakdown gauges are published
        #: into it when the run finishes (and live engine metrics during)
        self.metrics = metrics
        self.machine = Machine(
            program,
            num_contexts=self.config.total_contexts,
            contexts_per_core=self.config.contexts_per_core,
            max_instructions=max_instructions,
        )
        self.engine = engine
        if engine is not None:
            if not engine.deferred:
                raise MachineError(
                    "the timing simulator needs a deferred-mode engine "
                    "(DttEngine(..., deferred=True))"
                )
            self.machine.attach_engine(engine)
            engine.cycle_source = lambda: self.now
            if metrics is not None:
                engine.attach_metrics(metrics)
        self.hierarchy = CacheHierarchy(
            self.config.num_cores, self.config.hierarchy_params
        )
        if self.config.model_icache:
            self.hierarchy.enable_icache()
        self.predictor = make_predictor(self.config.predictor)
        per_core = self.config.contexts_per_core
        self.cores = [
            SmtCore(
                core_id,
                self.machine.contexts[core_id * per_core: (core_id + 1) * per_core],
                self.config.core_params,
                self.hierarchy,
                self.predictor,
                self.machine,
            )
            for core_id in range(self.config.num_cores)
        ]
        if self.config.model_icache:
            for core in self.cores:
                core.model_icache = True
        self.energy_model = energy_model or EnergyModel()
        self.now = 0

    # -- driving --------------------------------------------------------------------

    def run(self) -> TimingResult:
        """Simulate until the main context halts; returns the result."""
        machine = self.machine
        engine = self.engine
        main = machine.main_context
        spawn_latency = self.config.core_params.spawn_latency
        max_cycles = self.config.max_cycles

        def charge_spawn(ctx):  # hoisted: one closure per run, not per cycle
            self._charge_spawn(ctx, spawn_latency)

        while main.state is not ContextState.HALTED:
            if engine is not None:
                engine.dispatch_pending(on_dispatch=charge_spawn)
            issued = 0
            for core in self.cores:
                issued += core.cycle(self.now)
            self.now += 1
            if not issued:
                self._fast_forward()
            if self.now > max_cycles:
                raise ExecutionLimitExceeded(
                    f"exceeded {max_cycles} simulated cycles"
                )
        return self._result()

    def _charge_spawn(self, ctx, spawn_latency: int) -> None:
        ctx.busy_until = self.now + spawn_latency

    def _fast_forward(self) -> None:
        """Skip ahead to the next cycle where some context is ready."""
        earliest = None
        for core in self.cores:
            ready_at = core.min_ready_time(self.now)
            if ready_at >= 0 and (earliest is None or ready_at < earliest):
                earliest = ready_at
        if earliest is not None:
            if earliest > self.now:
                self.now = earliest
            return
        # No running context anywhere.  Legitimate only if the engine has
        # work it can still dispatch (queued entries + an idle context).
        if self.engine is not None and self.engine.queue:
            if self.machine.idle_contexts():
                return  # dispatch happens at the top of the next iteration
        blocked = [
            ctx.context_id
            for ctx in self.machine.contexts
            if ctx.state is ContextState.BLOCKED
        ]
        raise MachineError(
            f"timing deadlock at cycle {self.now}: no runnable context, "
            f"blocked contexts: {blocked}, "
            f"queued activations: {len(self.engine.queue) if self.engine else 0}"
        )

    # -- results ------------------------------------------------------------------------

    def _publish_metrics(self, energy: float) -> None:
        """Cycle-breakdown gauges for the finished run (last run wins)."""
        registry = self.metrics
        machine = self.machine
        registry.counter("timing.runs", "timed runs completed").inc()
        gauges = {
            "timing.cycles": (self.now, "simulated cycles of the last run"),
            "timing.instructions":
                (machine.instructions_executed, "committed instructions"),
            "timing.main_instructions":
                (machine.main_instructions, "main-context instructions"),
            "timing.support_instructions":
                (machine.support_instructions, "support-thread instructions"),
            "timing.ipc": (
                machine.instructions_executed / self.now if self.now else 0.0,
                "instructions per cycle"),
            "timing.branch_lookups":
                (self.predictor.lookups, "branch-predictor lookups"),
            "timing.branch_mispredicts":
                (self.predictor.mispredicts, "branch mispredictions"),
            "timing.dram_accesses":
                (self.hierarchy.dram_accesses, "DRAM accesses"),
            "timing.energy": (energy, "event-weighted energy proxy"),
        }
        for name, (value, help_text) in gauges.items():
            registry.gauge(name, help_text).set(value)
        for level, stats in self.hierarchy.level_stats().items():
            for field, value in stats.items():
                registry.gauge(
                    f"timing.cache.{level}.{field}",
                    f"{level} {field} of the last run",
                ).set(value)

    def _result(self) -> TimingResult:
        machine = self.machine
        energy = self.energy_model.energy(
            machine.instructions_executed, self.hierarchy
        )
        if self.metrics is not None:
            self._publish_metrics(energy)
        return TimingResult(
            cycles=self.now,
            instructions=machine.instructions_executed,
            main_instructions=machine.main_instructions,
            support_instructions=machine.support_instructions,
            branch_lookups=self.predictor.lookups,
            branch_mispredicts=self.predictor.mispredicts,
            cache_stats=self.hierarchy.level_stats(),
            dram_accesses=self.hierarchy.dram_accesses,
            coherence_invalidations=self.hierarchy.coherence_invalidations,
            energy=energy,
            engine_summary=self.engine.summary() if self.engine else None,
            output=list(machine.output),
            config_name=self.config.name,
        )
