"""Timing results and the event-weighted energy proxy.

The paper argues DTT saves energy in proportion to eliminated work.  We
expose that relationship through an explicit event-weighted proxy rather
than a circuit-level power model: committed instructions plus cache and
DRAM events, each with a fixed weight.  Absolute units are arbitrary;
ratios between a baseline and a DTT run of the same kernel are the
reported quantity (experiment E7).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cache.hierarchy import CacheHierarchy


class EnergyModel:
    """Fixed per-event weights (arbitrary units)."""

    __slots__ = ("per_instruction", "per_l1_access", "per_l2_access",
                 "per_dram_access", "per_writeback")

    def __init__(
        self,
        per_instruction: float = 1.0,
        per_l1_access: float = 0.5,
        per_l2_access: float = 4.0,
        per_dram_access: float = 40.0,
        per_writeback: float = 4.0,
    ):
        self.per_instruction = per_instruction
        self.per_l1_access = per_l1_access
        self.per_l2_access = per_l2_access
        self.per_dram_access = per_dram_access
        self.per_writeback = per_writeback

    def energy(self, instructions: int, hierarchy: CacheHierarchy) -> float:
        """Total proxy energy for a finished run."""
        l1_accesses = hierarchy.total_l1_accesses()
        l2 = hierarchy.l2.stats
        writebacks = l2.writebacks + sum(
            cache.stats.writebacks for cache in hierarchy.l1
        )
        return (
            instructions * self.per_instruction
            + l1_accesses * self.per_l1_access
            + l2.accesses * self.per_l2_access
            + hierarchy.dram_accesses * self.per_dram_access
            + writebacks * self.per_writeback
        )


class TimingResult:
    """Everything a timed run produced."""

    __slots__ = (
        "cycles",
        "instructions",
        "main_instructions",
        "support_instructions",
        "branch_lookups",
        "branch_mispredicts",
        "cache_stats",
        "dram_accesses",
        "coherence_invalidations",
        "energy",
        "engine_summary",
        "output",
        "config_name",
    )

    def __init__(
        self,
        cycles: int,
        instructions: int,
        main_instructions: int,
        support_instructions: int,
        branch_lookups: int,
        branch_mispredicts: int,
        cache_stats: Dict[str, Dict[str, int]],
        dram_accesses: int,
        coherence_invalidations: int,
        energy: float,
        engine_summary: Optional[Dict[str, int]],
        output,
        config_name: str,
    ):
        self.cycles = cycles
        self.instructions = instructions
        self.main_instructions = main_instructions
        self.support_instructions = support_instructions
        self.branch_lookups = branch_lookups
        self.branch_mispredicts = branch_mispredicts
        self.cache_stats = cache_stats
        self.dram_accesses = dram_accesses
        self.coherence_invalidations = coherence_invalidations
        self.energy = energy
        self.engine_summary = engine_summary
        self.output = output
        self.config_name = config_name

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def branch_accuracy(self) -> float:
        if not self.branch_lookups:
            return 1.0
        return 1.0 - self.branch_mispredicts / self.branch_lookups

    def speedup_over(self, baseline: "TimingResult") -> float:
        """Baseline cycles / this run's cycles (>1 means faster)."""
        if not self.cycles:
            raise ValueError("run has zero cycles")
        return baseline.cycles / self.cycles

    def as_dict(self) -> Dict:
        """JSON-ready summary of the run."""
        return {
            "config": self.config_name,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "main_instructions": self.main_instructions,
            "support_instructions": self.support_instructions,
            "ipc": round(self.ipc, 4),
            "branch_accuracy": round(self.branch_accuracy, 4),
            "dram_accesses": self.dram_accesses,
            "coherence_invalidations": self.coherence_invalidations,
            "energy": round(self.energy, 1),
            "engine": self.engine_summary,
        }

    def __repr__(self) -> str:
        return (
            f"TimingResult(cycles={self.cycles}, "
            f"instructions={self.instructions}, ipc={self.ipc:.2f})"
        )
