"""E7 — Table 'machine configuration' + energy.

Regenerates the artifact and times the regeneration; the rendered table
is printed into the benchmark output (captured with -s or in CI logs).
"""

from repro.harness.experiments import run_e7_machine_energy

from benchmarks.conftest import report


def test_e7_machine_energy(benchmark, shared_runner):
    result = benchmark.pedantic(
        lambda: run_e7_machine_energy(shared_runner), rounds=1, iterations=1
    )
    report(result)
