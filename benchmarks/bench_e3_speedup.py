"""E3 — Fig. 'speedup' (paper: up to 5.9x, mean 1.46x).

Regenerates the artifact and times the regeneration; the rendered table
is printed into the benchmark output (captured with -s or in CI logs).
"""

from repro.harness.experiments import run_e3_speedup

from benchmarks.conftest import report


def test_e3_speedup(benchmark, shared_runner):
    result = benchmark.pedantic(
        lambda: run_e3_speedup(shared_runner), rounds=1, iterations=1
    )
    report(result)
