"""E8 — Design-choice ablations.

Regenerates the artifact and times the regeneration; the rendered table
is printed into the benchmark output (captured with -s or in CI logs).
"""

from repro.harness.experiments import run_e8_ablations

from benchmarks.conftest import report


def test_e8_ablations(benchmark, shared_runner):
    result = benchmark.pedantic(
        lambda: run_e8_ablations(shared_runner), rounds=1, iterations=1
    )
    report(result)
