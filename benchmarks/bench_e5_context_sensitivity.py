"""E5 — Fig. 'hardware context sensitivity'.

Regenerates the artifact and times the regeneration; the rendered table
is printed into the benchmark output (captured with -s or in CI logs).
"""

from repro.harness.experiments import run_e5_context_sensitivity

from benchmarks.conftest import report


def test_e5_context_sensitivity(benchmark, shared_runner):
    result = benchmark.pedantic(
        lambda: run_e5_context_sensitivity(shared_runner), rounds=1, iterations=1
    )
    report(result)
