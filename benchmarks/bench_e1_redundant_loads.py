"""E1 — Fig. 'redundant loads' (paper: 78% average).

Regenerates the artifact and times the regeneration; the rendered table
is printed into the benchmark output (captured with -s or in CI logs).
"""

from repro.harness.experiments import run_e1_redundant_loads

from benchmarks.conftest import report


def test_e1_redundant_loads(benchmark, shared_runner):
    result = benchmark.pedantic(
        lambda: run_e1_redundant_loads(shared_runner), rounds=1, iterations=1
    )
    report(result)
