"""Interpreter tiers — instructions/sec, legacy stepping vs closure vs superblock.

Regenerates the BENCH_interpreter rows (the same measurement behind
``dtt-harness bench``) and times the regeneration; the rendered table is
printed into the benchmark output (captured with -s or in CI logs).

The speedup assertions are deliberately looser than the committed
baseline in ``benchmarks/BENCH_interpreter.json`` — the regression *gate*
is ``dtt-harness compare`` against that file; these bounds only catch a
tier being turned off entirely (speedup collapsing toward 1x).
"""

from repro.harness.bench import (BENCH_SCHEMA, BENCH_TIERS, BENCH_WORKLOADS,
                                 render_bench, run_bench)


def test_interpreter_fast_path(benchmark):
    result = benchmark.pedantic(
        lambda: run_bench(repeat=2), rounds=1, iterations=1
    )
    print()
    print(render_bench(result))
    assert result["schema"] == BENCH_SCHEMA
    rows = result["rows"]
    assert set(rows) == {f"{name}:{tier}" for name in BENCH_WORKLOADS
                         for tier in BENCH_TIERS}
    for name, row in rows.items():
        assert row["instructions"] > 0, name
        assert row["speedup"] >= 2.0, (
            f"{name}: only {row['speedup']:.2f}x over legacy stepping "
            "(expected well above 2x; is run() falling back?)"
        )
    # the paper-headline pointer-chasing workload is the acceptance bar:
    # the superblock tier must clearly beat the closure tier on mcf (the
    # committed baseline records >= 3x; 2x here tolerates machine noise)
    assert rows["mcf:superblock"]["speedup"] >= 3.0
    assert rows["mcf:superblock"]["speedup_vs_closure"] >= 2.0
    assert rows["mcf:superblock"]["build_seconds"] >= 0.0
