"""Interpreter fast path — instructions/sec, legacy stepping vs batch run.

Regenerates the BENCH_interpreter rows (the same measurement behind
``dtt-harness bench``) and times the regeneration; the rendered table is
printed into the benchmark output (captured with -s or in CI logs).

The speedup assertions are deliberately looser than the committed
baseline in ``benchmarks/BENCH_interpreter.json`` — the regression *gate*
is ``dtt-harness compare`` against that file; these bounds only catch the
fast path being turned off entirely (speedup collapsing toward 1x).
"""

from repro.harness.bench import BENCH_WORKLOADS, render_bench, run_bench


def test_interpreter_fast_path(benchmark):
    result = benchmark.pedantic(
        lambda: run_bench(repeat=2), rounds=1, iterations=1
    )
    print()
    print(render_bench(result))
    rows = result["rows"]
    assert set(rows) == set(BENCH_WORKLOADS)
    for name, row in rows.items():
        assert row["instructions"] > 0, name
        assert row["speedup"] >= 2.0, (
            f"{name}: fast path only {row['speedup']:.2f}x over legacy "
            "stepping (expected well above 2x; is run() falling back?)"
        )
    # the paper-headline pointer-chasing workload is the acceptance bar
    assert rows["mcf"]["speedup"] >= 3.0
