"""E9 — parallelism extension (not a paper figure).

The abstract claims DTT "enables increased parallelism"; the paper's
evaluation focuses on redundancy elimination.  This benchmark regenerates
the extension experiment isolating the parallelism benefit.
"""

from repro.harness.experiments import run_e9_parallelism

from benchmarks.conftest import report


def test_e9_parallelism(benchmark, shared_runner):
    result = benchmark.pedantic(
        lambda: run_e9_parallelism(shared_runner), rounds=1, iterations=1
    )
    report(result)
