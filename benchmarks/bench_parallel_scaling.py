"""Parallel scaling — process-pool scheduler vs the serial path.

Not a paper figure: this guards the execution subsystem itself.  The
E3 speedup sweep (the largest shared run matrix) is executed once
serially and once with two workers; sharding must never make the suite
slower than running it in-process.  Skipped on single-core hosts, where
a process pool can only add overhead.
"""

import os
import time

import pytest

from repro.exec.plan import build_plan
from repro.exec.pool import execute_plan
from repro.harness.runner import SuiteRunner

#: parallel may be at most this much slower than serial before failing
_SLOWDOWN_TOLERANCE = 1.10


@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="needs >= 2 cores for a meaningful comparison")
def test_two_workers_no_slower_than_serial(benchmark):
    plan = build_plan(["E3"])

    start = time.perf_counter()
    serial_stats = execute_plan(plan, SuiteRunner(), jobs=1)
    serial_seconds = time.perf_counter() - start
    assert serial_stats["serial_executed"] == len(plan)

    def parallel_pass():
        runner = SuiteRunner()
        stats = execute_plan(plan, runner, jobs=2)
        assert stats["parallel_executed"] + stats["serial_executed"] \
            == len(plan)
        return stats

    stats = benchmark.pedantic(parallel_pass, rounds=1, iterations=1)
    parallel_seconds = benchmark.stats.stats.total
    print(f"\nserial {serial_seconds:.2f}s vs jobs=2 "
          f"{parallel_seconds:.2f}s over {len(plan)} runs "
          f"(mode={stats['mode']})")
    assert parallel_seconds <= serial_seconds * _SLOWDOWN_TOLERANCE, (
        f"jobs=2 took {parallel_seconds:.2f}s, serial took "
        f"{serial_seconds:.2f}s — parallel sharding made the suite slower")


def test_warm_store_pass_is_nearly_free(tmp_path, benchmark):
    """A second pass against a populated store must cost ~no sim time."""
    plan = build_plan(["E9"])
    store = str(tmp_path / "store")
    cold_runner = SuiteRunner(store=store)
    start = time.perf_counter()
    execute_plan(plan, cold_runner, jobs=1)
    cold_seconds = time.perf_counter() - start

    def warm_pass():
        runner = SuiteRunner(store=store)
        stats = execute_plan(plan, runner, jobs=1)
        assert stats["store_hits"] == len(plan)
        assert stats["serial_executed"] == 0
        return runner

    runner = benchmark.pedantic(warm_pass, rounds=1, iterations=1)
    warm_seconds = benchmark.stats.stats.total
    assert runner.phase_seconds() == {}  # no simulation wall-clock at all
    print(f"\ncold {cold_seconds:.2f}s vs warm {warm_seconds:.2f}s "
          f"over {len(plan)} runs")
    assert warm_seconds < cold_seconds
