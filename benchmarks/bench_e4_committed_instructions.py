"""E4 — Fig. 'committed instructions'.

Regenerates the artifact and times the regeneration; the rendered table
is printed into the benchmark output (captured with -s or in CI logs).
"""

from repro.harness.experiments import run_e4_committed_instructions

from benchmarks.conftest import report


def test_e4_committed_instructions(benchmark, shared_runner):
    result = benchmark.pedantic(
        lambda: run_e4_committed_instructions(shared_runner), rounds=1, iterations=1
    )
    report(result)
