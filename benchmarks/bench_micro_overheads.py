"""M1 — mechanism-overhead microbenchmarks (appendix-style).

Measures the per-event cost of the DTT machinery in isolation: silent
triggering stores, clean consume points, the full trigger round trip,
and the superblock tier's compile cost + code-cache hit rate.
Also guards the observability layer itself: a metered engine run (metrics
registry attached) must stay within 2x the wall-clock of a bare run, so
instrumentation can never quietly become the hot path.
"""

from repro.harness.microbench import instrumentation_overhead, \
    run_micro_overheads

from benchmarks.conftest import report


def test_micro_overheads(benchmark, shared_runner):
    result = benchmark.pedantic(run_micro_overheads, rounds=1, iterations=1)
    report(result)


def test_instrumentation_overhead(benchmark):
    bare, metered, ratio = benchmark.pedantic(
        instrumentation_overhead, rounds=1, iterations=1
    )
    print()
    print(f"bare engine run:    {bare * 1000:.1f} ms")
    print(f"metered engine run: {metered * 1000:.1f} ms "
          f"({ratio:.2f}x bare)")
    # 2x budget, plus a small absolute floor so a sub-millisecond bare
    # run's timer noise cannot fail the guard
    assert metered <= 2.0 * bare + 0.05, (
        f"metrics hooks cost {ratio:.2f}x the bare run "
        f"(bare={bare:.4f}s, metered={metered:.4f}s)"
    )
