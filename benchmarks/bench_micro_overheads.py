"""M1 — mechanism-overhead microbenchmarks (appendix-style).

Measures the per-event cost of the DTT machinery in isolation: silent
triggering stores, clean consume points, and the full trigger round trip.
"""

from repro.harness.microbench import run_micro_overheads

from benchmarks.conftest import report


def test_micro_overheads(benchmark, shared_runner):
    result = benchmark.pedantic(run_micro_overheads, rounds=1, iterations=1)
    report(result)
