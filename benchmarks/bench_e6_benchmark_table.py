"""E6 — Table 'benchmark characteristics'.

Regenerates the artifact and times the regeneration; the rendered table
is printed into the benchmark output (captured with -s or in CI logs).
"""

from repro.harness.experiments import run_e6_benchmark_table

from benchmarks.conftest import report


def test_e6_benchmark_table(benchmark, shared_runner):
    result = benchmark.pedantic(
        lambda: run_e6_benchmark_table(shared_runner), rounds=1, iterations=1
    )
    report(result)
