"""Shared state for the benchmark harness.

All eight experiment benchmarks share one :class:`SuiteRunner`, so timed
runs that several experiments need (the baseline/DTT sweep) are executed
once; each benchmark's reported time is therefore the *incremental* cost
of regenerating its artifact given the shared runs.  Run the files
individually for isolated timings.
"""

import pytest

from repro.harness.runner import SuiteRunner


@pytest.fixture(scope="session")
def shared_runner():
    return SuiteRunner()


def report(result):
    """Print an experiment's artifact into the benchmark output."""
    print()
    print(result.render())
    failing = [c for c in result.checks if not c.passed]
    assert not failing, f"shape checks failed: {failing}"
    return result
