"""E2 — Fig. 'redundant computation' (shape-only).

Regenerates the artifact and times the regeneration; the rendered table
is printed into the benchmark output (captured with -s or in CI logs).
"""

from repro.harness.experiments import run_e2_redundant_computation

from benchmarks.conftest import report


def test_e2_redundant_computation(benchmark, shared_runner):
    result = benchmark.pedantic(
        lambda: run_e2_redundant_computation(shared_runner), rounds=1, iterations=1
    )
    report(result)
