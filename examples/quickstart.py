#!/usr/bin/env python3
"""Quickstart: data-triggered threads in plain Python.

The scenario is the paper's motivating pattern in miniature: a program
keeps *derived* data (here, per-region subtotals and a grand total) that
must stay consistent with *source* data (a table of account balances).
The classic structure recomputes the derived data every time it's needed
— even when nothing changed.  With data-triggered threads you attach the
recomputation to the data itself: writes that don't change anything
trigger nothing, and the consume point skips straight through.

Run:  python examples/quickstart.py
"""

from repro import DttRuntime

REGIONS = 4
ACCOUNTS_PER_REGION = 8

rt = DttRuntime()

# Source data: account balances, grouped into regions.
balances = rt.array("balances", [100] * (REGIONS * ACCOUNTS_PER_REGION))

# Derived data: per-region subtotals, kept by a support thread that is
# *triggered by balance writes* — and only by writes that change a value.
subtotals = [100 * ACCOUNTS_PER_REGION] * REGIONS


@rt.support_thread(triggers=[balances])
def refresh_region(event):
    """Recompute the subtotal of the region containing the changed account."""
    region = event.index // ACCOUNTS_PER_REGION
    start = region * ACCOUNTS_PER_REGION
    subtotals[region] = sum(balances[start:start + ACCOUNTS_PER_REGION])


def grand_total():
    """The consume point: settle pending updates, then read."""
    rt.tcheck(refresh_region)
    return sum(subtotals)


def main():
    print("data-triggered threads quickstart")
    print("=" * 50)

    # A day of transactions.  Most are *no-ops at the data level*: a
    # payment in and an equal payment out, a re-posted statement, an
    # idempotent retry — the store happens, the value doesn't change.
    transactions = [
        (3, 100),   # silent: balance already 100
        (5, 250),   # real change
        (5, 250),   # idempotent retry: silent
        (17, 100),  # silent
        (20, 40),   # real change
        (20, 40),   # silent
        (31, 100),  # silent
    ]

    for account, new_balance in transactions:
        balances[account] = new_balance
        print(f"  post balance[{account:2d}] = {new_balance:3d}   "
              f"pending recomputations: {rt.pending_count()}")

    print(f"\ngrand total: {grand_total()}")

    stats = refresh_region.stats
    print("\nwhat the runtime did:")
    print(f"  triggering stores:        {stats.triggering_stores}")
    print(f"  silent (filtered) writes: {stats.same_value_suppressed}")
    print(f"  support-thread runs:      {stats.executions_completed}")
    print(f"  consume points:           {stats.consumes} "
          f"({stats.clean_consumes} skipped clean)")

    # The punchline: 7 writes, but only 2 changed anything — so only 2
    # regional recomputations ran, instead of 7 (or instead of
    # recomputing all 4 regions at the consume point).
    assert stats.executions_completed == 2
    print("\n2 of 7 writes changed data -> 2 recomputations, 5 eliminated.")


if __name__ == "__main__":
    main()
