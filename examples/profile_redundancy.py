#!/usr/bin/env python3
"""Reproduce the paper's motivation study: how redundant are loads?

Profiles the baseline build of every suite benchmark and renders the
per-benchmark redundant-load fractions as a text figure (the paper's §2
chart; their suite average was 78%).  Also lists, for one benchmark, the
hottest redundant load sites — the loops a DTT conversion should target.

Run:  python examples/profile_redundancy.py
"""

from repro import SUITE, profile_program
from repro.harness.tables import bar_series


def main():
    print("redundant-load profile of the benchmark suite")
    print("=" * 55)

    names, fractions = [], []
    reports = {}
    for name, workload in SUITE.items():
        inp = workload.make_input()
        report = profile_program(workload.build_baseline(inp), name)
        reports[name] = report
        names.append(name)
        fractions.append(report.redundant_load_fraction)

    average = sum(fractions) / len(fractions)
    names.append("average")
    fractions.append(average)
    print(bar_series(names, [f * 100 for f in fractions], unit="%"))
    print(f"\npaper's reported average: 78%  |  measured: {average:.1%}")

    # where does mcf's redundancy live?
    print("\nhottest redundant-load sites in mcf (by redundant fetches):")
    mcf = reports["mcf"]
    program = SUITE["mcf"].build_baseline(SUITE["mcf"].make_input())
    for site in mcf.loads.hottest_redundant_loads(5):
        function = program.function_at(site.pc)
        where = function.name if function else "?"
        print(f"  pc {site.pc:4d} in {where:12s} "
              f"{site.redundant:>7,}/{site.dynamic:>7,} redundant "
              f"({site.redundant_fraction:.0%})")
    print("\nthe sites inside the refresh walk are exactly what the DTT")
    print("conversion eliminates (see examples/mcf_network.py).")


if __name__ == "__main__":
    main()
