#!/usr/bin/env python3
"""Reproduce the paper's headline result: mcf on the simulated machine.

Builds the mcf kernel (network-simplex ``refresh_potential``) twice —
the unmodified baseline and the DTT conversion — and runs both on the
cycle-approximate SMT machine.  The paper reports 5.9x; this prints what
the reproduction measures, along with the engine's view of why.

Run:  python examples/mcf_network.py
"""

from repro import TimingSimulator, get_workload, named_config


def main():
    workload = get_workload("mcf")
    inp = workload.make_input()
    config = named_config("smt2")

    print("mcf: refresh_potential as a data-triggered thread")
    print("=" * 55)
    print(f"tree nodes: {inp.num_nodes}, simplex iterations: {inp.steps}")
    print(f"machine: {config.num_cores} core(s) x "
          f"{config.contexts_per_core} SMT contexts, "
          f"{config.core_params.issue_width}-wide\n")

    baseline = TimingSimulator(workload.build_baseline(inp), config).run()
    print(f"baseline: {baseline.cycles:>9,} cycles   "
          f"{baseline.instructions:>9,} instructions   "
          f"IPC {baseline.ipc:.2f}")

    build = workload.build_dtt(inp)
    engine = build.engine(deferred=True)
    dtt = TimingSimulator(build.program, named_config("smt2"),
                          engine=engine).run()
    print(f"DTT:      {dtt.cycles:>9,} cycles   "
          f"{dtt.instructions:>9,} instructions   IPC {dtt.ipc:.2f}")

    assert dtt.output == baseline.output, "DTT must be output-identical"
    print("\noutputs identical: yes")
    print(f"speedup: {baseline.cycles / dtt.cycles:.2f}x "
          f"(paper: 5.9x on real mcf)")

    row = engine.status["refresh"]
    print("\nwhy (engine statistics):")
    print(f"  arc-cost stores:          {row.triggering_stores}")
    print(f"  value-silent (filtered):  {row.same_value_suppressed}")
    print(f"  tree walks actually run:  {row.executions_completed}")
    print(f"  consume points skipped:   {row.clean_consumes}/{row.consumes} "
          f"({row.skip_fraction:.0%})")
    print(f"  instructions eliminated:  "
          f"{1 - dtt.instructions / baseline.instructions:.0%}")


if __name__ == "__main__":
    main()
