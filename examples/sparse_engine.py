#!/usr/bin/env python3
"""A sparse linear-system engine with data-triggered preconditioning.

This is the ``equake`` scenario at library scale: an iterative solver
whose matrix is assembled once and then *mostly* re-assembled to the same
values each timestep (a seismic stiffness matrix, a circuit Jacobian, a
finite-element operator on a fixed mesh...).  The per-row preconditioner
derived from the matrix is expensive to rebuild — and almost always
rebuilt from unchanged inputs.

With DTT, the preconditioner rows hang off the matrix values: assembly
writes that change nothing trigger nothing, and the solver's consume
point skips straight to the solve.

Run:  python examples/sparse_engine.py
"""

import random

from repro import DttRuntime


class SparseEngine:
    """CSR matrix + Jacobi-style preconditioner kept by a support thread."""

    def __init__(self, num_rows, nnz_per_row, seed=7):
        rng = random.Random(seed)
        self.num_rows = num_rows
        self.row_ptr = [0]
        self.col_idx = []
        values = []
        for _ in range(num_rows):
            cols = sorted(rng.sample(range(num_rows), nnz_per_row))
            self.col_idx.extend(cols)
            values.extend(round(rng.uniform(0.5, 4.0), 2) for _ in cols)
            self.row_ptr.append(len(self.col_idx))
        self.row_of = [0] * len(values)
        for row in range(num_rows):
            for k in range(self.row_ptr[row], self.row_ptr[row + 1]):
                self.row_of[k] = row

        self.rt = DttRuntime()
        self.vals = self.rt.array("vals", values)
        self.precond = [0.0] * num_rows
        for row in range(num_rows):
            self._rebuild_row(row)

        outer = self

        @self.rt.support_thread(triggers=[self.vals])
        def precond_row(event):
            outer._rebuild_row(outer.row_of[event.index])

        self._thread = precond_row

    def _rebuild_row(self, row):
        s = 0.0
        for k in range(self.row_ptr[row], self.row_ptr[row + 1]):
            s += abs(self.vals[k])
        self.precond[row] = 1.0 / s

    # -- public API ---------------------------------------------------------

    def assemble(self, slot, value):
        """(Re-)assemble one matrix entry — a triggering store."""
        self.vals[slot] = value

    def apply(self, x):
        """y = D^-1 A x, settling any pending preconditioner rows first."""
        self.rt.tcheck(self._thread)
        y = [0.0] * self.num_rows
        for row in range(self.num_rows):
            acc = 0.0
            for k in range(self.row_ptr[row], self.row_ptr[row + 1]):
                acc += self.vals[k] * x[self.col_idx[k]]
            y[row] = acc * self.precond[row]
        return y

    @property
    def stats(self):
        return self._thread.stats


def main():
    rng = random.Random(42)
    engine = SparseEngine(num_rows=64, nnz_per_row=5)
    nnz = len(engine.vals)
    x = [rng.uniform(-1, 1) for _ in range(64)]

    print("sparse engine with data-triggered preconditioning")
    print("=" * 55)
    print(f"matrix: 64 rows, {nnz} nonzeros\n")

    checksum = 0.0
    timesteps = 200
    for _step in range(timesteps):
        # re-assembly pass: touch 8 entries; ~90% store the value already
        # there (the mesh didn't move), ~10% actually change
        for _ in range(8):
            slot = rng.randrange(nnz)
            if rng.random() < 0.10:
                engine.assemble(slot, round(rng.uniform(0.5, 4.0), 2))
            else:
                engine.assemble(slot, engine.vals[slot])
        y = engine.apply(x)
        checksum += y[0]
        x = [0.9 * v + 0.1 * w for v, w in zip(x, y)]

    s = engine.stats
    naive_rebuilds = timesteps * 8  # rebuild per assembly write
    print(f"timesteps:                  {timesteps}")
    print(f"assembly writes:            {s.triggering_stores}")
    print(f"  silent (value unchanged): {s.same_value_suppressed} "
          f"({s.same_value_suppressed / s.triggering_stores:.0%})")
    print(f"preconditioner row rebuilds:")
    print(f"  naive (per write):        {naive_rebuilds}")
    print(f"  data-triggered:           {s.executions_completed}")
    print(f"  eliminated:               "
          f"{1 - s.executions_completed / naive_rebuilds:.0%}")
    print(f"\nsolution checksum: {checksum:.6f}")


if __name__ == "__main__":
    main()
