#!/usr/bin/env python3
"""The adoption workflow: find, convert, verify, and measure a DTT.

This walkthrough does to a fresh kernel what the paper's authors did to
SPEC: profile it, let the advisor point at the conversion, apply the
conversion, prove it output-identical, and measure the win.  The kernel
is a small inventory system: orders mutate stock levels (mostly
no-op restocks), and a reorder-report is derived from the stock table.

Run:  python examples/convert_with_advisor.py
"""

from repro import (
    DttEngine,
    Machine,
    ProgramBuilder,
    ThreadRegistry,
    TimingSimulator,
    TriggerSpec,
    named_config,
    run_to_completion,
)
from repro.isa import lint_program
from repro.profiling import advise
from repro.workloads.data import int_array, update_schedule

ITEMS = 48
STEPS = 120
THRESHOLD = 20


def make_inputs(seed=7):
    stock = int_array(seed, ITEMS, (0, 60), stream="inv-stock")
    upd_idx, upd_val = update_schedule(
        seed, STEPS, stock, change_rate=0.12, value_range=(0, 60),
        stream="inv-orders",
    )
    return stock, upd_idx, upd_val


def emit_report(b):
    """reorder[i] = 1 if stock[i] < THRESHOLD; count them into total."""
    with b.scratch(5, "rp") as (sb, rb, i, v, total):
        b.la(sb, "stock")
        b.la(rb, "reorder")
        b.li(total, 0)
        with b.for_range(i, 0, ITEMS):
            b.ldx(v, sb, i)
            with b.scratch(1, "lo") as (low,):
                b.slti(low, v, THRESHOLD)
                b.stx(low, rb, i)
                b.add(total, total, low)
        with b.scratch(1, "tb") as (tb,):
            b.la(tb, "total")
            b.st(total, tb, 0)


def emit_step(b, t, triggering):
    """One order: stock[upd_idx[t]] = upd_val[t]; returns the store pc."""
    with b.scratch(4, "up") as (ui, uv, idx, val):
        b.la(ui, "upd_idx")
        b.la(uv, "upd_val")
        b.ldx(idx, ui, t)
        b.ldx(val, uv, t)
        with b.scratch(1, "sb") as (sb,):
            b.la(sb, "stock")
            if triggering:
                return b.tstx(val, sb, idx)
            return b.stx(val, sb, idx)


def emit_consume(b, checksum):
    with b.scratch(2, "co") as (tb, v):
        b.la(tb, "total")
        b.ld(v, tb, 0)
        b.add(checksum, checksum, v)
    b.out(checksum)


def build_baseline(stock, upd_idx, upd_val):
    b = ProgramBuilder()
    b.data("stock", stock)
    b.zeros("reorder", ITEMS)
    b.zeros("total", 1)
    b.data("upd_idx", upd_idx)
    b.data("upd_val", upd_val)
    with b.function("main"):
        t = b.global_reg("t")
        checksum = b.global_reg("checksum")
        b.li(checksum, 0)
        with b.for_range(t, 0, STEPS):
            emit_step(b, t, triggering=False)
            emit_report(b)  # recomputed every order, changed or not
            emit_consume(b, checksum)
        b.halt()
    return b.build()


def build_dtt(stock, upd_idx, upd_val):
    b = ProgramBuilder()
    b.data("stock", stock)
    b.zeros("reorder", ITEMS)
    b.zeros("total", 1)
    b.data("upd_idx", upd_idx)
    b.data("upd_val", upd_val)
    with b.thread("reportthr"):
        emit_report(b)
        b.treturn()
    pc_box = []
    with b.function("main"):
        t = b.global_reg("t")
        checksum = b.global_reg("checksum")
        b.li(checksum, 0)
        emit_report(b)  # rule R2: valid before the first consume
        with b.for_range(t, 0, STEPS):
            pc_box.append(emit_step(b, t, triggering=True))
            b.tcheck_thread("reportthr")
            emit_consume(b, checksum)
        b.halt()
    program = b.build()
    spec = TriggerSpec("reportthr", store_pcs=[pc_box[0]],
                       per_address_dedupe=False)
    return program, spec


def main():
    stock, upd_idx, upd_val = make_inputs()
    print("step 1 — profile the baseline and ask the advisor")
    print("=" * 55)
    baseline_program = build_baseline(stock, upd_idx, upd_val)
    report = advise(baseline_program)
    print(report.render())
    order_store = report.top_triggers(3)[-1]
    print(
        "\n-> reading the advice: the hottest silent stores are the"
        "\n   report's own outputs — their near-total silence proves the"
        "\n   report keeps recomputing unchanged results.  Among the"
        "\n   remaining candidates is the order store against the stock"
        f"\n   table ({order_store.silent_fraction:.0%} silent): that input"
        "\n   is what a trigger should watch, with the report as the"
        "\n   support thread.\n"
    )

    print("step 2 — apply the conversion, lint it")
    print("=" * 55)
    dtt_program, spec = build_dtt(stock, upd_idx, upd_val)
    findings = lint_program(dtt_program)
    print(f"lint findings: {findings or 'none'}\n")

    print("step 3 — prove it output-identical")
    print("=" * 55)
    baseline_machine = Machine(build_baseline(stock, upd_idx, upd_val))
    baseline_out = run_to_completion(baseline_machine)
    dtt_machine = Machine(dtt_program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([spec]))
    dtt_machine.attach_engine(engine)
    dtt_out = run_to_completion(dtt_machine)
    assert dtt_out == baseline_out
    print(f"outputs identical over {len(dtt_out)} steps: yes\n")

    print("step 4 — measure")
    print("=" * 55)
    timed_baseline = TimingSimulator(
        build_baseline(stock, upd_idx, upd_val), named_config("smt2")
    ).run()
    program2, spec2 = build_dtt(stock, upd_idx, upd_val)
    timed_dtt = TimingSimulator(
        program2, named_config("smt2"),
        engine=DttEngine(ThreadRegistry([spec2]), deferred=True),
    ).run()
    assert timed_dtt.output == timed_baseline.output
    row = engine.status["reportthr"]
    print(f"baseline: {timed_baseline.cycles:>7,} cycles")
    print(f"DTT:      {timed_dtt.cycles:>7,} cycles")
    print(f"speedup:  {timed_baseline.cycles / timed_dtt.cycles:.2f}x")
    print(f"report rebuilds: {STEPS} -> {row.executions_completed} "
          f"({row.skip_fraction:.0%} of consumes skipped)")


if __name__ == "__main__":
    main()
