#!/usr/bin/env python3
"""Export a DTT run's engine timeline for Perfetto / chrome://tracing.

Runs the mcf kernel under the timing simulator with an
:class:`~repro.core.trace.EngineTrace` attached and a metrics registry
metering the run, then writes the trace as Chrome trace-event JSON.
Open the file at https://ui.perfetto.dev (or chrome://tracing): each
support thread is a track, dispatched activations are duration slices,
and triggering stores / filter suppressions / consume points are instant
events — the paper's mechanism, visible.

Run:  python examples/export_trace.py [out.json]
"""

import sys

from repro.harness.runner import SuiteRunner
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import traces_to_chrome
from repro.workloads.suite import SUITE


def main():
    out_path = sys.argv[1] if len(sys.argv) > 1 else "mcf_trace.json"
    registry = MetricsRegistry()
    runner = SuiteRunner(metrics=registry, trace=True)

    print("running mcf: baseline + DTT under the timing simulator ...")
    baseline = runner.timed(SUITE["mcf"], "baseline")
    dtt = runner.timed(SUITE["mcf"], "dtt")
    print(f"  baseline: {baseline.cycles:>9,} cycles")
    print(f"  DTT:      {dtt.cycles:>9,} cycles "
          f"({dtt.speedup_over(baseline):.2f}x)")

    import json
    payload = traces_to_chrome(runner.traces())
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=1)
    print(f"\nwrote {len(payload['traceEvents'])} trace events to {out_path}")
    print("open it at https://ui.perfetto.dev or chrome://tracing")

    print("\nwhat the run counted (metrics registry):")
    print(registry.render())


if __name__ == "__main__":
    main()
